"""Process-backend drain gate: real multi-core sharding (ISSUE 9).

Replays the Fig. 8c synthetic stream (60K events at full scale, 1 REST
fault per 1000) through ``ShardedAnalyzer`` at shard counts
{1, 2, 4, 8} on **both** execution backends — ``inline`` (all shards
in the calling thread) and ``process`` (one long-lived worker process
per shard, chunked seeding + backpressure per
``docs/parallelism.md``) — and times, per backend:

* **startup** — analyzer construction (for ``process``: forking the
  pool and seeding every worker with the pickled library + config);
* **ingest** — scatter + chunk shipping + flush;
* **detect** — the deferred Algorithm 2 drain, which is where the
  multi-core win lives.

The acceptance gate is the ISSUE 9 tentpole bar: ``backend="process"``
at 4 shards must drain the detection backlog ≥2.0× faster wall-clock
than the **committed pre-engine serial baseline** (the
``committed_serial_detect_seconds`` recorded in
``results/BENCH_detection.json``), with ``verify_equivalence`` PASS at
every shard count on both backends — a speedup that changes the
diagnosis is not a speedup.  A drift gate holds the achieved speedup
to ≥90% of this benchmark's own committed full-scale run.

Artifacts: ``results/BENCH_parallel_process.json`` (machine readable;
the committed copy is a full-scale run) and
``results/parallel_process.txt`` (rendered report).
"""

import time

from conftest import (
    assert_no_drift,
    full_scale,
    load_committed,
    save_committed,
)

from repro.core.config import GretelConfig
from repro.core.parallel import ShardedAnalyzer, verify_equivalence
from repro.monitoring.store import MetadataStore
from repro.workloads.traffic import SyntheticStream

SHARD_COUNTS = (1, 2, 4, 8)
FAULT_EVERY = 1000
ALPHA = 768          # the paper's testbed α, as in Fig. 8c
SEED = 5             # the Fig. 8c stream seed
REPEATS = 3          # timing is best-of-N; fresh pool each run

#: Acceptance floor (ISSUE 9): the 4-shard process-backend detection
#: drain must be ≥ this × faster than the committed pre-engine serial
#: baseline.  Only meaningful at full scale, so it is asserted there
#: and reported everywhere.
TARGET_SPEEDUP_AT_4 = 2.0


def _committed_baseline():
    """This benchmark's committed full-scale payload, or None."""
    return load_committed("BENCH_parallel_process.json")


def _committed_serial_detect_seconds():
    """The committed pre-engine serial drain (the tentpole's "before").

    Primary source: ``BENCH_detection.json``'s recorded
    ``committed_serial_detect_seconds`` (the serial drain measured
    before the incremental engine landed).  Fallback: the serial
    ``detect_seconds`` of the committed parallel-throughput baseline.
    """
    payload = load_committed("BENCH_detection.json")
    if payload is not None:
        seconds = payload.get("acceptance", {}).get(
            "committed_serial_detect_seconds"
        )
        if seconds:
            return seconds
    payload = load_committed("BENCH_parallel_throughput.json")
    if payload is None:
        return None
    return payload.get("serial", {}).get("detect_seconds")


def _config():
    return GretelConfig(alpha=ALPHA)


def _time_backend(library, events, shards, backend):
    """Best-of-N (by detect drain) timing for one configuration."""
    best = None
    for _ in range(REPEATS):
        started = time.perf_counter()
        analyzer = ShardedAnalyzer(
            library, shards, store=MetadataStore(), config=_config(),
            track_latency=False, defer_detection=True,
            backend=backend,
        )
        startup = time.perf_counter() - started
        try:
            started = time.perf_counter()
            analyzer.ingest(events)
            analyzer.flush()
            ingest = time.perf_counter() - started
            started = time.perf_counter()
            snapshots = analyzer.process_deferred()
            detect = time.perf_counter() - started
            sample = {
                "shards": shards,
                "backend": backend,
                "startup_seconds": startup,
                "ingest_seconds": ingest,
                "detect_seconds": detect,
                "drain_seconds": ingest + detect,
                "snapshots": snapshots,
                "reports": len(analyzer.reports),
            }
        finally:
            analyzer.close()
        if best is None or detect < best["detect_seconds"]:
            best = sample
    return best


def _render(payload):
    lines = [
        "Process-backend drain gate (Fig. 8c stream)",
        f"{payload['stream']['events']} events, 1 fault per "
        f"{payload['stream']['fault_every']}, alpha={ALPHA}, "
        f"scale={payload['scale']}",
        f"{'config':>14s} {'startup':>9s} {'ingest':>9s} "
        f"{'detect':>9s} {'oracle':>8s}",
    ]
    for row in payload["runs"]:
        label = f"{row['shards']}sh-{row['backend']}"
        lines.append(
            f"{label:>14s} {row['startup_seconds']:7.3f}s "
            f"{row['ingest_seconds']:7.3f}s "
            f"{row['detect_seconds']:7.3f}s "
            f"{'PASS' if row['equivalent'] else 'FAIL':>8s}"
        )
    acceptance = payload["acceptance"]
    committed = acceptance["committed_serial_detect_seconds"]
    achieved = acceptance["achieved_speedup_detect_at_4"]
    if committed is not None and achieved is not None:
        lines.append(
            f"  4-shard process drain vs committed serial baseline "
            f"({committed:.3f}s): {achieved:.2f}x "
            f"(target {TARGET_SPEEDUP_AT_4:.1f}x)"
        )
    return "\n".join(lines)


def test_parallel_process_gate(character, save_result):
    library = character.library
    event_count = 60_000 if full_scale() else 12_000
    stream = SyntheticStream(
        library, library.symbols, fault_every=FAULT_EVERY, seed=SEED,
    )
    events = stream.events(event_count)

    runs = []
    for shards in SHARD_COUNTS:
        for backend in ("inline", "process"):
            sample = _time_backend(library, events, shards, backend)
            oracle = verify_equivalence(
                events, library, shards, config=_config(),
                track_latency=False, defer_detection=True,
                strict=False, backend=backend,
            )
            sample.update({
                "equivalent": oracle.ok,
                "serial_reports": oracle.serial_reports,
                "sharded_reports": oracle.sharded_reports,
            })
            runs.append(sample)

    def pick(shards, backend):
        return next(r for r in runs
                    if r["shards"] == shards and r["backend"] == backend)

    # Read committed baselines *before* a full-scale run overwrites
    # this benchmark's own file.
    committed = _committed_baseline()
    committed_serial = _committed_serial_detect_seconds()
    process_at_4 = pick(4, "process")
    achieved = (
        committed_serial / process_at_4["detect_seconds"]
        if committed_serial else None
    )

    payload = {
        "benchmark": "parallel_process",
        "scale": "full" if full_scale() else "small",
        "stream": {
            "events": event_count,
            "fault_every": FAULT_EVERY,
            "alpha": ALPHA,
            "seed": SEED,
        },
        "runs": runs,
        "acceptance": {
            "target_speedup_detect_at_4": TARGET_SPEEDUP_AT_4,
            "committed_serial_detect_seconds": committed_serial,
            "achieved_speedup_detect_at_4": achieved,
            "process_detect_seconds_at_4":
                process_at_4["detect_seconds"],
        },
    }
    # The committed JSON is a full-scale run; the small smoke scale
    # must not clobber it with reduced-stream numbers.
    if full_scale():
        save_committed("BENCH_parallel_process.json", payload)
        save_result("parallel_process", _render(payload))
    else:
        print()
        print(_render(payload))

    # The oracle must hold for every (shards, backend) cell.
    for row in runs:
        assert row["equivalent"], (
            f"{row['backend']} run diverged from serial at "
            f"{row['shards']} shards"
        )
        assert row["serial_reports"] == row["sharded_reports"] > 0
    # Both backends must report identically to *each other* too (same
    # report count cell by cell — signatures already matched serial).
    for shards in SHARD_COUNTS:
        assert pick(shards, "process")["reports"] == \
            pick(shards, "inline")["reports"]

    # The ISSUE 9 bar: ≥2× over the committed pre-engine serial drain
    # at 4 shards, full scale only.
    if full_scale() and achieved is not None:
        assert achieved >= TARGET_SPEEDUP_AT_4, (
            f"4-shard process drain "
            f"{process_at_4['detect_seconds']:.3f}s is only "
            f"{achieved:.2f}x the committed serial baseline's "
            f"{committed_serial:.3f}s (target {TARGET_SPEEDUP_AT_4}x)"
        )
    # Drift gate: worker-protocol changes must not erode the win.
    if full_scale() and committed is not None:
        previous = committed["acceptance"].get(
            "achieved_speedup_detect_at_4"
        )
        if previous is not None and achieved is not None:
            assert_no_drift(
                "4-shard process detect speedup", achieved, previous,
            )
