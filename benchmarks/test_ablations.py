"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation disables one GRETEL mechanism and re-runs a reduced
§7.3-style fault workload, quantifying what the mechanism buys.
"""

from conftest import full_scale

from repro.core.config import GretelConfig
from repro.evaluation.common import p_rate_for, run_fault_workload


def _run(character, seed=3, fault_phase="late", **overrides):
    config = GretelConfig(p_rate=p_rate_for(100), **overrides)
    return run_fault_workload(
        concurrency=100, n_faults=8, character=character,
        seed=seed, config=config, fault_phase=fault_phase,
    )


def _aggregate(character, seeds, fault_phase="late", **overrides):
    thetas, matched, hits = [], [], []
    misses = 0
    for seed in seeds:
        stats = _run(character, seed=seed, fault_phase=fault_phase,
                     **overrides)
        thetas.extend(stats.thetas())
        matched.extend(stats.matched_counts())
        hits.extend(stats.true_hits())
        misses += sum(1 for n in stats.matched_counts() if n == 0)
    mean = lambda xs: sum(xs) / len(xs) if xs else 0.0  # noqa: E731
    return {
        "theta": mean(thetas),
        "matched": mean(matched),
        "reports": len(thetas),
        "false_negatives": misses,
        "true_hit": mean([1.0 if h else 0.0 for h in hits]),
    }


def _seeds():
    return (3, 4, 5) if full_scale() else (3,)


def test_ablation_truncation(character, save_result):
    """Alg. 2's truncation: without it, operational faults must match
    full fingerprints that never finished executing.  Early-phase
    faults are the discriminating case — for a fault near the end of
    an operation the truncated and full fingerprints coincide."""
    with_trunc = _aggregate(character, _seeds(), fault_phase="early")
    without = _aggregate(character, _seeds(), fault_phase="early",
                         truncate_fingerprints=False)
    save_result("ablation_truncation", "\n".join([
        "Ablation: fingerprint truncation at the offending API (Alg. 2)",
        "(early-phase faults: the operation never ran past the failure)",
        f"  with truncation:    theta={with_trunc['theta']:.4f} "
        f"matched={with_trunc['matched']:.1f} "
        f"ground-truth hit rate={with_trunc['true_hit']:.2f}",
        f"  without truncation: theta={without['theta']:.4f} "
        f"matched={without['matched']:.1f} "
        f"ground-truth hit rate={without['true_hit']:.2f}",
        "  (without truncation, the smaller match sets are bystander"
        " operations: the faulty operation itself cannot match its own"
        " full fingerprint)",
    ]))
    assert with_trunc["theta"] > 0.94
    # Truncation is what lets the incomplete faulty operation match.
    assert with_trunc["true_hit"] > without["true_hit"]


def test_ablation_relaxed_match(character, save_result):
    """§5.3.1's relaxation: strict matching requires every symbol
    (reads included) in order.  When the sliding window is tight
    relative to operation length — exactly when the paper's relaxation
    matters — strict matching returns *no* operation far more often."""
    relaxed = _aggregate(character, _seeds(), alpha=400)
    strict = _aggregate(character, _seeds(), alpha=400, relaxed_match=False)
    save_result("ablation_relaxed_match", "\n".join([
        "Ablation: relaxed (state-change-order) vs strict matching",
        "(sliding window deliberately tight: alpha=400 under 100-op load)",
        f"  relaxed: theta={relaxed['theta']:.4f} "
        f"matched={relaxed['matched']:.1f} "
        f"no-match faults={relaxed['false_negatives']}/{relaxed['reports']}",
        f"  strict:  theta={strict['theta']:.4f} "
        f"matched={strict['matched']:.1f} "
        f"no-match faults={strict['false_negatives']}/{strict['reports']}",
    ]))
    # The relaxation is what keeps false negatives down when parts of
    # the fingerprint fall outside the window (Fig. 4's missing-A case).
    assert strict["false_negatives"] > relaxed["false_negatives"]


def test_ablation_adaptive_context(character, save_result):
    """The adaptive context buffer vs matching the whole window."""
    adaptive = _aggregate(character, _seeds())
    whole = _aggregate(character, _seeds(), adaptive_context=False)
    save_result("ablation_context_buffer", "\n".join([
        "Ablation: adaptive context buffer (grow by delta until theta drops)",
        f"  adaptive:     theta={adaptive['theta']:.4f} "
        f"matched={adaptive['matched']:.1f}",
        f"  whole window: theta={whole['theta']:.4f} "
        f"matched={whole['matched']:.1f}",
    ]))
    assert adaptive["theta"] >= whole["theta"] - 0.02


def test_extension_correlation_ids(character, save_result):
    """§5.3.1 future work: correlation identifiers shrink the match
    pool to the offending request chain."""
    baseline = _aggregate(character, _seeds())
    correlated = _aggregate(character, _seeds(), use_correlation_ids=True)
    save_result("extension_correlation_ids", "\n".join([
        "Extension: correlation-id filtering (paper §5.3.1 future work)",
        f"  without correlation ids: theta={baseline['theta']:.4f} "
        f"matched={baseline['matched']:.1f} "
        f"ground-truth hit rate={baseline['true_hit']:.2f}",
        f"  with correlation ids:    theta={correlated['theta']:.4f} "
        f"matched={correlated['matched']:.1f} "
        f"ground-truth hit rate={correlated['true_hit']:.2f}",
    ]))
    # Filtering to the request chain pins the ground-truth operation.
    assert correlated["true_hit"] >= baseline["true_hit"]
    assert correlated["true_hit"] >= 0.85
    assert correlated["theta"] >= baseline["theta"] - 0.03


def test_ablation_noise_filter(character, save_result):
    """Algorithm 1's noise filtering: without it, fingerprints carry
    heartbeats, keystone legs and poll loops."""
    from repro.openstack.catalog import default_catalog
    from repro.core.fingerprint import generate_fingerprint
    from repro.core.characterize import characterize_suite
    from repro.workloads.tempest import TempestSuite
    from repro.evaluation.common import default_suite

    # Re-trace a handful of tests and compare fingerprint sizes with
    # the noise filter on vs off (off = raw trace into the LCS).
    suite = default_suite()
    sample = TempestSuite(tests=[
        t for t in suite.tests if t.category == "compute"
    ][:10])
    filtered = characterize_suite(sample, iterations=2, seed=99)

    catalog = default_catalog()
    symbols = filtered.library.symbols
    import repro.core.fingerprint as fp_module

    original = fp_module.filter_noise
    fp_module.filter_noise = lambda keys, _catalog: list(keys)
    try:
        raw = characterize_suite(sample, iterations=2, seed=99)
    finally:
        fp_module.filter_noise = original

    mean = lambda lib: sum(len(f) for f in lib) / len(lib)  # noqa: E731
    filtered_size = mean(filtered.library)
    raw_size = mean(raw.library)
    save_result("ablation_noise_filter", "\n".join([
        "Ablation: Algorithm 1 noise filtering",
        f"  avg fingerprint size with filter:    {filtered_size:.1f}",
        f"  avg fingerprint size without filter: {raw_size:.1f}",
        f"  noise fraction removed: {1 - filtered_size / raw_size:.0%}",
    ]))
    assert raw_size > filtered_size


def test_ablation_detector_choice(character, save_result):
    """§6: why LS and not a static threshold — feed both detectors the
    same drifting latency series (organic load growth + one injected
    shift) and count alarms."""
    import random

    from repro.core.outliers import LevelShiftDetector, StaticThresholdDetector

    rng = random.Random(7)
    series = []
    ts = 0.0
    for step in range(2000):
        ts += 0.05
        base = 0.010 + 0.000008 * step          # slow organic drift
        if 600 <= step < 900:
            base += 0.040                        # the injected shift
        series.append((ts, base + rng.uniform(0, 0.002)))

    adaptive = LevelShiftDetector(min_delta=0.004, cooldown=5.0)
    static = StaticThresholdDetector(threshold=0.015)
    for ts, value in series:
        adaptive.update(ts, value)
        static.update(ts, value)

    in_window = lambda alarms: sum(  # noqa: E731
        1 for a in alarms if 30.0 <= a.ts <= 47.0
    )
    save_result("ablation_detector_choice", "\n".join([
        "Ablation: LS (adaptive) vs static-threshold latency detection",
        "(organic drift + one 40ms injected shift at t=[30s,45s))",
        f"  LS:     {len(adaptive.alarms)} alarms, "
        f"{in_window(adaptive.alarms)} during the injected shift",
        f"  static: {len(static.alarms)} alarms, "
        f"{in_window(static.alarms)} during the injected shift",
        "  (the static threshold keeps alarming once drift crosses it;",
        "   LS adapts and re-alarms only on genuine shifts)",
    ]))
    assert in_window(adaptive.alarms) >= 1
    assert len(static.alarms) > 3 * max(1, len(adaptive.alarms))
