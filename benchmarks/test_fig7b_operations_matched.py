"""Fig. 7b — operations matched: API error only vs context-buffer snapshot."""

from conftest import full_scale

from repro.evaluation import fig7


def test_regenerate_fig7b(character, save_result):
    if full_scale():
        cells = fig7.run_fig7b(character)
    else:
        cells = fig7.run_fig7b(character, concurrencies=(100, 300), seeds=(3,))
    save_result("fig7b", fig7.format_fig7b(cells))
    for cell in cells:
        # The figure's shape: the snapshot narrows the candidate set by
        # a large factor relative to matching on the error API alone.
        assert cell.matched_mean < cell.candidates_mean / 3
