"""Table 1 — suite characterization, plus fingerprint-generation cost."""

from repro.openstack.catalog import default_catalog
from repro.core.fingerprint import generate_fingerprint
from repro.core.symbols import SymbolTable
from repro.evaluation import table1


def test_regenerate_table1(character, save_result):
    rows = table1.run(character)
    save_result("table1", table1.format_report(rows))
    by_category = {r["category"]: r for r in rows}
    assert by_category["total"]["tests"] == 1200
    # Shape: Compute dominates tests, events and fingerprint size.
    for other in ("image", "network", "storage", "misc"):
        assert (by_category["compute"]["avg_fp_with_rpc"]
                > by_category[other]["avg_fp_with_rpc"])


def test_fingerprint_generation_cost(benchmark, character):
    """Cost of Algorithm 1 on a Compute-scale pair of traces."""
    catalog = default_catalog()
    symbols = character.library.symbols
    fingerprint = max(character.library, key=len)
    trace = symbols.decode(fingerprint.symbols)

    def generate():
        return generate_fingerprint("bench", [trace, trace[1:] + trace[:1]],
                                    symbols, catalog)

    result = benchmark(generate)
    assert len(result) > 0
