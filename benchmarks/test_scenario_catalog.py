"""Scenario catalog — graded fault-injection evaluation scorecard.

Small scale runs the cheap live/synthetic scenarios; full scale runs
the entire catalog including the sustained-load performance capture
and renders the committed-scorecard table under ``results/``.
"""

from conftest import full_scale

from repro.scenarios import (
    build_scorecard,
    names,
    render_scorecard,
    run_catalog,
)

#: The sustained 48-way, 24-simulated-second capture dominates wall
#: clock; small scale leaves it (and only it) out.
EXPENSIVE = ("performance_level_shift",)


def test_scenario_catalog_scorecard(character, save_result):
    if full_scale():
        selected = None
    else:
        selected = [n for n in names() if n not in EXPENSIVE]
    result = run_catalog(character, seed=0, shards=4, names=selected)
    document = build_scorecard(result)
    save_result("scenario_catalog", render_scorecard(document))
    assert result.all_pass
    # ``repro scenarios run`` returns exactly this predicate as its
    # exit code (0 pass / 1 fail — the CLI exit-code contract).
    assert result.exit_code == 0
    # Catalog-wide micro-averaged detection quality (Fig. 5-7 shape):
    # every injected fault instance is recalled, and report precision
    # stays high even with the level-shift detector's warm-up noise.
    assert result.counts.recall == 1.0
    assert result.counts.precision is not None
    assert result.counts.precision >= 0.9
