"""Parallel-analyzer throughput baseline: serial vs sharded (§7.4.1).

The repo's first recorded performance baseline.  Replays the Fig. 8c
synthetic stream (60K events at full scale, 1 REST fault per 1000)
through the serial ``GretelAnalyzer`` event receiver and through
``ShardedAnalyzer`` at shard counts {1, 2, 4, 8}, measuring

* **ingest** events/second (detection deferred — the §7.4.1 receiver
  path the paper's 50K events/s claim is about), and
* **effective** events/second (including the deferred detection
  drain),

and runs the differential-correctness oracle at every shard count so
the speedup is only reported for a configuration proven
report-identical to the serial analyzer.

Artifacts: ``results/BENCH_parallel_throughput.json`` (machine
readable; the committed copy is a full-scale run) and
``results/parallel_throughput.txt`` (rendered report, referenced from
EXPERIMENTS.md).
"""

import time

from conftest import (
    assert_no_drift,
    full_scale,
    load_committed,
    save_committed,
)

from repro.core.analyzer import GretelAnalyzer
from repro.core.config import GretelConfig
from repro.core.parallel import ShardedAnalyzer, verify_equivalence
from repro.monitoring.store import MetadataStore
from repro.workloads.traffic import SyntheticStream

SHARD_COUNTS = (1, 2, 4, 8)
FAULT_EVERY = 1000
ALPHA = 768          # the paper's testbed α, as in Fig. 8c
SEED = 5             # the Fig. 8c stream seed
REPEATS = 3          # timing is best-of-N; fresh analyzer each run

#: Acceptance floor: sharded ingest ≥ this × serial at 4 shards on the
#: full 60K-event stream (ISSUE 2).  The small smoke scale asserts a
#: looser floor to stay robust on noisy CI runners.
TARGET_SPEEDUP_AT_4 = 1.5
SMOKE_SPEEDUP_AT_4 = 1.1


def _committed_baseline():
    """The committed full-scale baseline payload, or None if absent."""
    return load_committed("BENCH_parallel_throughput.json")


def _config():
    return GretelConfig(alpha=ALPHA)


def _time_serial(library, events):
    best = None
    for _ in range(REPEATS):
        analyzer = GretelAnalyzer(
            library, store=MetadataStore(), config=_config(),
            track_latency=False, defer_detection=True,
        )
        started = time.perf_counter()
        analyzer.feed(events)
        analyzer.flush()
        ingest = time.perf_counter() - started
        started = time.perf_counter()
        snapshots = analyzer.process_deferred()
        detect = time.perf_counter() - started
        sample = {
            "ingest_seconds": ingest,
            "detect_seconds": detect,
            "snapshots": snapshots,
            "reports": len(analyzer.reports),
        }
        if best is None or ingest < best["ingest_seconds"]:
            best = sample
    return best


def _time_sharded(library, events, shards, backend="inline"):
    best = None
    for _ in range(REPEATS):
        analyzer = ShardedAnalyzer(
            library, shards, store=MetadataStore(), config=_config(),
            track_latency=False, defer_detection=True,
            backend=backend,
        )
        try:
            started = time.perf_counter()
            analyzer.ingest(events)
            analyzer.flush()
            ingest = time.perf_counter() - started
            started = time.perf_counter()
            snapshots = analyzer.process_deferred()
            detect = time.perf_counter() - started
            sample = {
                "ingest_seconds": ingest,
                "detect_seconds": detect,
                "snapshots": snapshots,
                "reports": len(analyzer.reports),
            }
        finally:
            analyzer.close()
        if best is None or ingest < best["ingest_seconds"]:
            best = sample
    return best


def _rates(sample, count):
    ingest = sample["ingest_seconds"]
    total = ingest + sample["detect_seconds"]
    return {
        "ingest_eps": count / ingest,
        "effective_eps": count / total,
        **sample,
    }


def _render(payload):
    from repro.reporting import render_bars

    serial = payload["serial"]
    lines = [
        "Parallel-analyzer throughput baseline (Fig. 8c stream)",
        f"{payload['stream']['events']} events, 1 fault per "
        f"{payload['stream']['fault_every']}, alpha={ALPHA}, "
        f"scale={payload['scale']}",
        f"{'analyzer':>12s} {'ingest':>14s} {'effective':>14s} "
        f"{'vs serial':>10s} {'oracle':>8s}",
        f"{'serial':>12s} {serial['ingest_eps']:10.0f}e/s "
        f"{serial['effective_eps']:12.0f}e/s {'1.00x':>10s} {'--':>8s}",
    ]
    for sample in payload["sharded"]:
        lines.append(
            f"{sample['shards']:10d}sh {sample['ingest_eps']:10.0f}e/s "
            f"{sample['effective_eps']:12.0f}e/s "
            f"{sample['speedup_ingest']:9.2f}x "
            f"{'PASS' if sample['equivalent'] else 'FAIL':>8s}"
        )
    process = payload.get("process")
    if process is not None:
        lines.append(
            f"{'4sh-proc':>12s} {process['ingest_eps']:10.0f}e/s "
            f"{process['effective_eps']:12.0f}e/s "
            f"{process['speedup_ingest']:9.2f}x "
            f"{'PASS' if process['equivalent'] else 'FAIL':>8s}"
        )
    lines.append("  ingest throughput (K events/s):")
    bars = [("serial", round(serial["ingest_eps"] / 1000, 1))]
    bars += [(f"{s['shards']} shard(s)", round(s["ingest_eps"] / 1000, 1))
             for s in payload["sharded"]]
    lines.append(render_bars(bars, unit=" Ke/s"))
    return "\n".join(lines)


def test_parallel_throughput_baseline(character, save_result):
    library = character.library
    if full_scale():
        event_count, shard_counts = 60_000, SHARD_COUNTS
    else:
        event_count, shard_counts = 12_000, SHARD_COUNTS
    stream = SyntheticStream(
        library, library.symbols, fault_every=FAULT_EVERY, seed=SEED,
    )
    events = stream.events(event_count)

    serial = _rates(_time_serial(library, events), event_count)
    sharded = []
    for shards in shard_counts:
        sample = _rates(_time_sharded(library, events, shards), event_count)
        oracle = verify_equivalence(
            events, library, shards, config=_config(),
            track_latency=False, defer_detection=True, strict=False,
        )
        sample.update({
            "shards": shards,
            "speedup_ingest": sample["ingest_eps"] / serial["ingest_eps"],
            "speedup_effective":
                sample["effective_eps"] / serial["effective_eps"],
            "equivalent": oracle.ok,
            "serial_reports": oracle.serial_reports,
            "sharded_reports": oracle.sharded_reports,
        })
        sharded.append(sample)

    # The process-backend column at 4 shards: same stream, each shard
    # in its own worker process.  The wall-clock gate for this backend
    # lives in test_parallel_process.py (BENCH_parallel_process.json);
    # here it rides along for a same-payload comparison plus the
    # cross-backend oracle.
    process = _rates(
        _time_sharded(library, events, 4, backend="process"),
        event_count,
    )
    process_oracle = verify_equivalence(
        events, library, 4, config=_config(), track_latency=False,
        defer_detection=True, strict=False, backend="process",
    )
    process.update({
        "shards": 4,
        "backend": "process",
        "speedup_ingest": process["ingest_eps"] / serial["ingest_eps"],
        "speedup_effective":
            process["effective_eps"] / serial["effective_eps"],
        "equivalent": process_oracle.ok,
        "serial_reports": process_oracle.serial_reports,
        "sharded_reports": process_oracle.sharded_reports,
    })

    # Read the committed baseline *before* a full-scale run overwrites
    # the file, so drift is measured against the last committed run.
    committed = _committed_baseline()

    payload = {
        "benchmark": "parallel_throughput",
        "scale": "full" if full_scale() else "small",
        "stream": {
            "events": event_count,
            "fault_every": FAULT_EVERY,
            "alpha": ALPHA,
            "seed": SEED,
        },
        "serial": serial,
        "sharded": sharded,
        "process": process,
        "acceptance": {
            "target_speedup_ingest_at_4_shards": TARGET_SPEEDUP_AT_4,
            "achieved_speedup_ingest_at_4_shards": next(
                s["speedup_ingest"] for s in sharded if s["shards"] == 4
            ),
        },
    }
    # The committed JSON is a full-scale run; the small smoke scale
    # must not clobber it with reduced-stream numbers.
    if full_scale():
        save_committed("BENCH_parallel_throughput.json", payload)
        save_result("parallel_throughput", _render(payload))
    else:
        print()
        print(_render(payload))

    # The oracle must hold at every shard count — a speedup that
    # changes the diagnosis is not a speedup.
    for sample in sharded:
        assert sample["equivalent"], (
            f"sharded run diverged from serial at {sample['shards']} shards"
        )
        assert sample["reports"] == serial["reports"]
    # Same bar for the process backend: the worker pool must be
    # report-identical to the serial analyzer on this stream.
    assert process["equivalent"], (
        "process-backend run diverged from serial at 4 shards"
    )
    assert process["reports"] == serial["reports"]
    # Sharded ingest must beat the serial receiver at 4 shards.
    at4 = payload["acceptance"]["achieved_speedup_ingest_at_4_shards"]
    floor = TARGET_SPEEDUP_AT_4 if full_scale() else SMOKE_SPEEDUP_AT_4
    assert at4 >= floor, (
        f"4-shard ingest speedup {at4:.2f}x below the {floor}x floor"
    )
    # Drift gate against the committed baseline: refactors of the
    # analyzer internals must not erode the sharded advantage.
    if full_scale() and committed is not None:
        assert_no_drift(
            "4-shard ingest speedup",
            at4,
            committed["acceptance"][
                "achieved_speedup_ingest_at_4_shards"
            ],
        )
