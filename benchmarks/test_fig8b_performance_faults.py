"""Fig. 8b — performance alarms under injected Glance latency."""

from conftest import full_scale

from repro.evaluation import fig8b


def test_regenerate_fig8b(character, save_result):
    if full_scale():
        result = fig8b.run(character, concurrency=200, duration=80.0)
    else:
        result = fig8b.run(character, concurrency=100, duration=50.0)
    save_result("fig8b", fig8b.format_report(result))
    # The figure's shape: the LS detector alarms during the injection
    # window and adapts rather than re-alarming continuously.
    assert result.alarms_in_window >= 1
    assert result.alarms_in_window <= 25
    # Performance-fault reports flow from the alarms.
    assert result.reports
