"""Fig. 6 — Neutron ports.json latency level shift under CPU surge."""

from conftest import full_scale

from repro.evaluation import fig6


def test_regenerate_fig6(character, save_result):
    if full_scale():
        result = fig6.run(character, concurrency=400, duration=60.0)
    else:
        result = fig6.run(character, concurrency=150, duration=40.0)
    save_result("fig6", fig6.format_report(result))
    # The level shift is detected during (not before) the surge, and
    # root cause analysis pins the CPU on the Neutron node.
    assert result.alarms
    assert result.alarms_in_window >= 1
    assert result.cpu_root_cause_found


def test_level_shift_detector_cost(benchmark):
    """Per-sample cost of the online LS detector."""
    import random

    from repro.core.outliers import LevelShiftDetector

    rng = random.Random(0)
    values = [0.01 + rng.uniform(0, 0.002) for _ in range(5000)]

    def run():
        detector = LevelShiftDetector()
        for index, value in enumerate(values):
            detector.update(float(index), value)
        return detector

    detector = benchmark(run)
    assert detector.alarms == []
