"""Latency-path throughput baseline: reference vs incremental LS.

Two measurements, one differential oracle (ISSUE 5):

* **LS micro** — a per-API latency series (window = 24, the
  production ``ls_window``) fed sample-by-sample through the reference
  :class:`~repro.core.outliers.LevelShiftDetector` (three O(w·log w)
  sorts per sample) and through the streaming
  :class:`~repro.core.streamstats.IncrementalLevelShiftDetector`
  (sorted rolling window + version-cached threshold).
* **Fig. 8c ingest** — the synthetic stream replayed through the
  serial analyzer with latency tracking *on* (detection deferred), so
  the delta isolates what the LS engine saves on the §7.4.1 receiver
  path.

``verify_levelshift_stream`` replays every per-API series through
both detectors and requires bit-identical alarms, baselines and
thresholds — serially over the whole stream and per shard bucket at
{1, 2, 4, 8} shards (the sub-streams the sharded analyzer would feed)
— and ``verify_equivalence`` proves the sharded analyzer
report-identical to the serial one with latency tracking enabled.

Artifacts: ``results/BENCH_latency.json`` (machine readable; the
committed copy is a full-scale run) and
``results/latency_throughput.txt`` (rendered report, referenced from
EXPERIMENTS.md).
"""

import random
import time

from conftest import (
    assert_no_drift,
    full_scale,
    load_committed,
    save_committed,
)

from repro.core.analyzer import GretelAnalyzer
from repro.core.config import GretelConfig
from repro.core.parallel import (
    ShardedAnalyzer,
    source_node_key,
    verify_equivalence,
)
from repro.core.streamstats import (
    LevelShiftEquivalence,
    detector_from_config,
    verify_levelshift_stream,
)
from repro.monitoring.store import MetadataStore
from repro.workloads.traffic import SyntheticStream

SHARD_COUNTS = (1, 2, 4, 8)
FAULT_EVERY = 1000
ALPHA = 768          # the paper's testbed α, as in Fig. 8c
SEED = 5             # the Fig. 8c stream seed
REPEATS = 3          # timing is best-of-N; fresh detectors each run
WINDOW = 24          # the production ls_window

#: Acceptance floor (ISSUE 5): the incremental detector must process
#: the micro series ≥ this × faster than the reference at full scale.
TARGET_MICRO_SPEEDUP = 3.0
SMOKE_MICRO_SPEEDUP = 1.5
#: The latency-tracked Fig. 8c ingest must show a measurable win; the
#: LS path is one stage of the receiver loop, so the bar is modest.
TARGET_INGEST_SPEEDUP = 1.05


def _committed_baseline():
    """The committed full-scale baseline payload, or None if absent."""
    return load_committed("BENCH_latency.json")


def _config(incremental):
    return GretelConfig(alpha=ALPHA, incremental_ls=incremental)


def _micro_series(samples):
    """One latency series with occasional level shifts, so the timing
    covers warmup, steady threshold checks, confirm streaks, alarms
    and post-alarm re-seeds."""
    rng = random.Random(SEED)
    series = []
    ts = 0.0
    level = 0.010
    for _ in range(samples):
        ts += rng.uniform(0.05, 0.15)
        if rng.random() < 0.002:
            level = 0.010 * rng.uniform(1.0, 8.0)
        series.append((ts, level * rng.uniform(0.9, 1.1)))
    return series


def _time_micro(series, incremental):
    """Best-of-N timing of one detector over the micro series."""
    best = None
    for _ in range(REPEATS):
        detector = detector_from_config(
            GretelConfig(ls_window=WINDOW), incremental=incremental,
        )
        update = detector.update
        started = time.perf_counter()
        for ts, value in series:
            update(ts, value)
        elapsed = time.perf_counter() - started
        sample = {
            "seconds": elapsed,
            "alarms": len(detector.alarms),
            "threshold_recomputes": detector.threshold_recomputes,
        }
        if best is None or elapsed < best["seconds"]:
            best = sample
    return best


def _time_ingest(library, events, incremental):
    """Best-of-N latency-tracked serial ingest (detection deferred)."""
    best = None
    for _ in range(REPEATS):
        analyzer = GretelAnalyzer(
            library, store=MetadataStore(),
            config=_config(incremental),
            track_latency=True, defer_detection=True,
        )
        started = time.perf_counter()
        analyzer.feed(events)
        analyzer.flush()
        ingest = time.perf_counter() - started
        stats = analyzer.stats()
        sample = {
            "ingest_seconds": ingest,
            "ingest_eps": len(events) / ingest,
            "ls_samples_fed": stats.ls_samples_fed,
            "ls_threshold_recomputes": stats.ls_threshold_recomputes,
            "performance_reports": len(analyzer.performance_reports),
        }
        if best is None or ingest < best["ingest_seconds"]:
            best = sample
    return best


def _shard_buckets(events, shards):
    """Partition the stream exactly as ``ShardedAnalyzer`` routes it:
    first-seen round-robin on the source node."""
    assignment = {}
    buckets = [[] for _ in range(shards)]
    for event in events:
        key = source_node_key(event)
        index = assignment.get(key)
        if index is None:
            index = len(assignment) % shards
            assignment[key] = index
        buckets[index].append(event)
    return buckets


def _verify_shard_streams(events, shards):
    """The LS oracle over every shard's sub-stream, merged."""
    total = LevelShiftEquivalence(series=0, samples=0)
    for bucket in _shard_buckets(events, shards):
        total.merge(verify_levelshift_stream(bucket, strict=False))
    return total


def _render(payload):
    micro = payload["micro"]
    ingest = payload["ingest"]
    lines = [
        "Latency-path throughput baseline (Fig. 8c stream)",
        f"{payload['stream']['events']} events, 1 fault per "
        f"{payload['stream']['fault_every']}, alpha={ALPHA}, "
        f"scale={payload['scale']}",
        f"LS micro: {micro['samples']} samples, window={WINDOW}",
        f"{'detector':>12s} {'seconds':>10s} {'per-sample':>11s} "
        f"{'recomputes':>11s} {'speedup':>9s}",
        f"{'reference':>12s} {micro['reference']['seconds']:9.3f}s "
        f"{micro['reference']['seconds'] / micro['samples'] * 1e6:8.2f}µs "
        f"{micro['reference']['threshold_recomputes']:11d} {'1.00x':>9s}",
        f"{'incremental':>12s} {micro['incremental']['seconds']:9.3f}s "
        f"{micro['incremental']['seconds'] / micro['samples'] * 1e6:8.2f}µs "
        f"{micro['incremental']['threshold_recomputes']:11d} "
        f"{micro['speedup']:8.2f}x",
        "Fig. 8c serial ingest, latency tracking on:",
        f"{'LS engine':>12s} {'ingest':>10s} {'events/s':>12s} "
        f"{'recomputes':>11s} {'speedup':>9s}",
        f"{'reference':>12s} {ingest['reference']['ingest_seconds']:9.3f}s "
        f"{ingest['reference']['ingest_eps']:10.0f}e/s "
        f"{ingest['reference']['ls_threshold_recomputes']:11d} "
        f"{'1.00x':>9s}",
        f"{'incremental':>12s} "
        f"{ingest['incremental']['ingest_seconds']:9.3f}s "
        f"{ingest['incremental']['ingest_eps']:10.0f}e/s "
        f"{ingest['incremental']['ls_threshold_recomputes']:11d} "
        f"{ingest['speedup']:8.2f}x",
        f"LS oracle (serial): "
        f"{'PASS' if payload['oracle']['serial_ok'] else 'FAIL'} — "
        f"{payload['oracle']['series']} series / "
        f"{payload['oracle']['samples']} samples / "
        f"{payload['oracle']['alarms']} alarms",
    ]
    for sample in payload["sharded"]:
        lines.append(
            f"{sample['shards']:10d}sh  LS oracle "
            f"{'PASS' if sample['levelshift_ok'] else 'FAIL':>4s}  "
            f"report oracle "
            f"{'PASS' if sample['equivalent'] else 'FAIL':>4s}"
        )
    return "\n".join(lines)


def test_latency_throughput_baseline(character, save_result):
    library = character.library
    if full_scale():
        event_count, micro_samples = 60_000, 200_000
    else:
        event_count, micro_samples = 12_000, 40_000
    stream = SyntheticStream(
        library, library.symbols, fault_every=FAULT_EVERY, seed=SEED,
    )
    events = stream.events(event_count)

    # The LS micro pair.
    series = _micro_series(micro_samples)
    micro_reference = _time_micro(series, incremental=False)
    micro_incremental = _time_micro(series, incremental=True)
    micro_speedup = (
        micro_reference["seconds"] / micro_incremental["seconds"]
    )
    assert micro_incremental["alarms"] == micro_reference["alarms"]

    # The latency-tracked ingest pair.
    ingest_reference = _time_ingest(library, events, incremental=False)
    ingest_incremental = _time_ingest(library, events, incremental=True)
    ingest_speedup = (
        ingest_reference["ingest_seconds"]
        / ingest_incremental["ingest_seconds"]
    )

    # Oracle 1: bit-identical LS behaviour over the whole stream.
    serial_oracle = verify_levelshift_stream(events, strict=False)

    # Oracle 2: the same property per shard bucket, plus full report
    # equivalence of the sharded analyzer with latency tracking on.
    sharded = []
    for shards in SHARD_COUNTS:
        ls_oracle = _verify_shard_streams(events, shards)
        report_oracle = verify_equivalence(
            events, library, shards, config=_config(True),
            track_latency=True, defer_detection=True, strict=False,
        )
        sharded.append({
            "shards": shards,
            "levelshift_ok": ls_oracle.ok,
            "levelshift_series": ls_oracle.series,
            "equivalent": report_oracle.ok,
        })

    committed = _committed_baseline()

    payload = {
        "benchmark": "latency_throughput",
        "scale": "full" if full_scale() else "small",
        "stream": {
            "events": event_count,
            "fault_every": FAULT_EVERY,
            "alpha": ALPHA,
            "seed": SEED,
        },
        "micro": {
            "samples": micro_samples,
            "window": WINDOW,
            "reference": micro_reference,
            "incremental": micro_incremental,
            "speedup": micro_speedup,
        },
        "ingest": {
            "reference": ingest_reference,
            "incremental": ingest_incremental,
            "speedup": ingest_speedup,
        },
        "oracle": {
            "serial_ok": serial_oracle.ok,
            "series": serial_oracle.series,
            "samples": serial_oracle.samples,
            "alarms": serial_oracle.alarms,
        },
        "sharded": sharded,
        "acceptance": {
            "target_micro_speedup": TARGET_MICRO_SPEEDUP,
            "achieved_micro_speedup": micro_speedup,
            "target_ingest_speedup": TARGET_INGEST_SPEEDUP,
            "achieved_ingest_speedup": ingest_speedup,
        },
    }
    # The committed JSON is a full-scale run; the small smoke scale
    # must not clobber it with reduced-stream numbers.
    if full_scale():
        save_committed("BENCH_latency.json", payload)
        save_result("latency_throughput", _render(payload))
    else:
        print()
        print(_render(payload))

    # A speedup that changes any alarm is not a speedup.
    assert serial_oracle.ok, serial_oracle.summary()
    for sample in sharded:
        assert sample["levelshift_ok"], (
            f"LS oracle diverged in a {sample['shards']}-shard bucket"
        )
        assert sample["equivalent"], (
            f"sharded run diverged from serial at "
            f"{sample['shards']} shards"
        )
    floor = (
        TARGET_MICRO_SPEEDUP if full_scale() else SMOKE_MICRO_SPEEDUP
    )
    assert micro_speedup >= floor, (
        f"incremental LS micro speedup {micro_speedup:.2f}x below the "
        f"{floor}x floor"
    )
    if full_scale():
        assert ingest_speedup >= TARGET_INGEST_SPEEDUP, (
            f"latency-tracked ingest speedup {ingest_speedup:.2f}x "
            f"below the {TARGET_INGEST_SPEEDUP}x floor"
        )
    # Drift gate: refactors must not erode the engine's advantage.
    if full_scale() and committed is not None:
        assert_no_drift(
            "LS micro speedup",
            micro_speedup,
            committed["acceptance"]["achieved_micro_speedup"],
        )


def test_shard_routing_replication(character):
    """The bucket partitioner must mirror ``ShardedAnalyzer``'s
    routing exactly, or the per-shard LS oracle would verify the
    wrong sub-streams."""
    library = character.library
    stream = SyntheticStream(
        library, library.symbols, fault_every=FAULT_EVERY, seed=SEED,
    )
    events = stream.events(2_000)
    analyzer = ShardedAnalyzer(library, 4, store=MetadataStore())
    expected = [[] for _ in range(4)]
    for event in events:
        expected[analyzer.shard_index(source_node_key(event))].append(
            event
        )
    assert _shard_buckets(events, 4) == expected
