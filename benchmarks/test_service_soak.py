"""Streaming-service soak: one long-lived tenant session under load.

Replays the Fig. 8c synthetic stream (60K events at full scale) as
one *continuous* multi-pass feed — 10× the stream at full scale, with
timestamps and sequence numbers advancing across passes —
checkpointing to disk every pass, and asserts the three properties a
standing service must hold that a batch drain never exercises:

* **flat memory** — traced heap (``tracemalloc``) after the last pass
  stays within a small factor of the steady-state reference (taken
  after pass 2, once warmup caches and the retention ring have
  filled): the session's retention hand-off really does bound state
  by α + queue capacity + the retention ring, not by events ingested;
* **bounded state** — window ≤ α, queue empty post-flush, retention
  ring ≤ its cap, the pipeline's report log drained;
* **sustained throughput** — streaming-path events/s ≥ 90% of an
  in-run serial baseline draining the *same continuous multi-pass
  stream* (so both halves do steady-state work — warmed level-shift
  detectors cost more per event than a cold single pass), drift-gated
  against the committed full-scale baseline like every other
  benchmark.  Checkpoint writes are timed separately: a snapshot
  costs O(state), not O(events), so it amortizes with checkpoint
  interval instead of scaling with ingest.

Both halves run under tracemalloc — it slows allocation-heavy code
down several-fold, so timing one half outside it would skew the
ratio arbitrarily.

The second soak (``test_service_async_soak``) is the async ingest
router under the same discipline but multi-tenant and concurrent: N
producer threads × M tenant sessions on the **process backend** (the
production configuration — pump threads feeding per-tenant worker
pools), swept over tenant counts to show aggregate throughput
scaling with tenants, with the 4-tenant point gated at ≥3× the
committed sync-router baseline, the same flat-memory ceiling, and
both differential oracles (checkpoint and async, inline and process
backends) recorded as part of the committed artifact.

Artifacts: ``results/BENCH_service.json`` /
``results/BENCH_service_async.json`` (committed copies are
full-scale runs) and ``results/service_soak.txt`` /
``results/service_async_soak.txt``.
"""

import gc
import os
import threading
import time
import tracemalloc
from dataclasses import replace

from conftest import (
    assert_no_drift,
    full_scale,
    load_committed,
    save_committed,
)

from repro.core.analyzer import GretelAnalyzer
from repro.core.config import GretelConfig
from repro.monitoring.store import MetadataStore
from repro.service import (
    CheckpointStore,
    StreamingService,
    TenantSession,
    verify_async,
    verify_checkpoint,
)
from repro.workloads.traffic import SyntheticStream

FAULT_EVERY = 1000
ALPHA = 768          # the paper's testbed α, as in Fig. 8c
SEED = 5             # the Fig. 8c stream seed
QUEUE_CAPACITY = 4096
#: Small on purpose: the flat-memory assertion below measures the
#: session, and a roomy ring still filling up would read as growth.
RETENTION = 8

#: Acceptance floors (ISSUE 8): the long-lived session must sustain
#: ≥ this fraction of the serial drain's events/s, and the traced
#: heap after the final pass must stay within this factor of the
#: steady-state reference.
TARGET_THROUGHPUT_RATIO = 0.9
MEMORY_GROWTH_CEILING = 1.35

#: Acceptance floors (ISSUE 10): at 4 tenants the async router on the
#: process backend must sustain ≥ this multiple of the committed
#: sync-router service baseline, and aggregate throughput must scale
#: with tenant count — the 4-tenant point beats the 1-tenant point.
#: Like the speedup gate, the scaling gate is enforced at full scale
#: only: a smoke sweep times 2-3 passes per leg, which is scheduler
#: noise, not a slope (observed 0.79x-1.57x across identical smoke
#: runs).  The floor is also core-aware: on a single-core runner one
#: tenant's worker already saturates the CPU, so cross-tenant
#: parallelism cannot raise aggregate throughput and the gate
#: degrades to "no collapse" — adding tenants must not *lose*
#: throughput to contention.  The hard perf gate everywhere is the
#: speedup over the sync router, which comes from moving analysis
#: off the submitters' thread entirely.
TARGET_ASYNC_SPEEDUP = 3.0
TARGET_TENANT_SCALING = 1.1
SINGLE_CORE_COLLAPSE_FLOOR = 0.8

#: Tenant-count sweep for the async soak: (tenants, timed passes).
#: Every leg gets one extra untimed warmup pass (worker-pool spawn,
#: cold caches).  Full scale totals ~12.5M events across the sweep.
ASYNC_SWEEP_FULL = ((1, 10), (2, 20), (4, 38))
ASYNC_SWEEP_SMALL = ((1, 2), (2, 2), (4, 3))


def _committed_baseline():
    """The committed full-scale baseline payload, or None if absent."""
    return load_committed("BENCH_service.json")


def _pass_events(events, index, stride, count_stride):
    """Pass ``index`` of the continuous replay.

    Each pass advances timestamps and sequence numbers by one stream
    length — replaying identical timestamps would send time backwards
    at every pass boundary, which is a pathological stream (level-
    shift baselines invalidate, pending snapshots mis-order), not a
    soak.  Pass 0 is the original list, so the two halves below see
    byte-identical streams without holding ``passes`` copies alive.
    """
    if index == 0:
        return events
    dt = stride * index
    dseq = count_stride * index
    return [
        replace(
            event,
            seq=event.seq + dseq,
            ts_request=event.ts_request + dt,
            ts_response=event.ts_response + dt,
        )
        for event in events
    ]


def _drain_serial(library, events, config, passes, stride, count):
    """In-run baseline: one batch analyzer draining the same
    continuous multi-pass stream; returns (events/s, reports)."""
    analyzer = GretelAnalyzer(
        library, store=MetadataStore(), config=config,
    )
    on_event = analyzer.on_event
    started = time.perf_counter()
    for index in range(passes):
        for event in _pass_events(events, index, stride, count):
            on_event(event)
    elapsed = time.perf_counter() - started
    return (passes * count) / elapsed, len(analyzer.reports)


def _render(payload):
    lines = [
        "service soak — one tenant session, "
        f"{payload['passes']}x {payload['events_per_pass']} events "
        f"(scale: {payload['scale']})",
        "",
        f"{'serial drain':>22s} {payload['serial_events_per_s']:12,.0f}"
        " events/s",
        f"{'service session':>22s} {payload['service_events_per_s']:12,.0f}"
        " events/s"
        f"  (ratio {payload['throughput_ratio']:.2f})",
        "",
        f"{'steady-state heap':>22s} {payload['heap_steady_bytes']:12,d} B"
        "  (after pass 2)",
        f"{'heap after last pass':>22s} {payload['heap_last_bytes']:12,d} B"
        f"  (growth {payload['heap_growth']:.2f}x)",
        "",
        f"reports: {payload['reports']}, checkpoints: "
        f"{payload['checkpoints_written']} "
        f"({payload['checkpoint_seconds']:.2f}s), "
        f"{payload['events_shed']} events shed",
    ]
    return "\n".join(lines)


def test_service_soak(character, save_result, tmp_path):
    library = character.library
    passes = 10 if full_scale() else 3
    event_count = 60_000 if full_scale() else 12_000
    stream = SyntheticStream(
        library, library.symbols, fault_every=FAULT_EVERY, seed=SEED,
    )
    events = stream.events(event_count)
    config = GretelConfig(alpha=ALPHA)
    stride = (
        events[-1].ts_response - events[0].ts_request
        + 1.0 / stream.rate_pps
    )

    # Untimed warmup: the first drain pays one-off costs (lazy catalog
    # construction, symbol-encode caches) that would otherwise land
    # entirely on whichever half runs first.
    _drain_serial(library, events, config, 1, stride, event_count)

    gc.collect()
    tracemalloc.start()
    serial_eps, serial_reports = _drain_serial(
        library, events, config, passes, stride, event_count,
    )

    store = CheckpointStore(tmp_path / "soak-checkpoints")
    session = TenantSession(
        "soak",
        GretelAnalyzer(library, store=MetadataStore(), config=config),
        queue_capacity=QUEUE_CAPACITY,
        policy="block",
        report_retention=RETENTION,
    )
    sink_counts = {"reports": 0}

    def _count(tenant, report):
        # Count only — a sink that retains report objects (each holds
        # its matched-event list) would read as heap growth.
        sink_counts["reports"] += 1

    session.on_report(_count)

    heap_per_pass = []
    elapsed = 0.0
    checkpoint_seconds = 0.0
    for index in range(passes):
        # The streaming path is on the throughput clock — replay
        # construction mirrors the serial half, submit/drain is the
        # session.  The per-pass checkpoint is timed separately: its
        # cost is constant per snapshot (state size ~α + queue), not
        # per event, so it amortizes with pass length instead of
        # scaling with it.  The gc + heap probe is instrumentation.
        started = time.perf_counter()
        replay = _pass_events(events, index, stride, event_count)
        for event in replay:
            session.submit(event)
        session.drain()
        elapsed += time.perf_counter() - started
        started = time.perf_counter()
        store.save("soak", session.snapshot_state(),
                   seq=session.events_ingested)
        checkpoint_seconds += time.perf_counter() - started
        # Release this pass's replay copy before measuring, so the
        # heap series tracks the session, not the measurement loop.
        replay = None
        gc.collect()
        heap_per_pass.append(tracemalloc.get_traced_memory()[0])
    tracemalloc.stop()
    service_eps = (passes * event_count) / elapsed

    # Steady-state heap reference: after pass 2 the warmup caches are
    # built and the retention ring holds full-stream reports; from
    # there on the session must be flat.
    heap_steady = heap_per_pass[min(1, len(heap_per_pass) - 1)]
    growth = heap_per_pass[-1] / heap_steady
    ratio = service_eps / serial_eps

    payload = {
        "scale": "full" if full_scale() else "small",
        "passes": passes,
        "events_per_pass": event_count,
        "alpha": ALPHA,
        "queue_capacity": QUEUE_CAPACITY,
        "report_retention": RETENTION,
        "serial_events_per_s": round(serial_eps, 1),
        "service_events_per_s": round(service_eps, 1),
        "throughput_ratio": round(ratio, 4),
        "heap_steady_bytes": heap_steady,
        "heap_last_bytes": heap_per_pass[-1],
        "heap_growth": round(growth, 4),
        "reports": session.reports_emitted,
        "events_shed": session.events_shed,
        "checkpoints_written": store.writes,
        "checkpoint_seconds": round(checkpoint_seconds, 3),
        "acceptance": {
            "target_throughput_ratio": TARGET_THROUGHPUT_RATIO,
            "achieved_throughput_ratio": round(ratio, 4),
            "memory_growth_ceiling": MEMORY_GROWTH_CEILING,
            "achieved_memory_growth": round(growth, 4),
        },
    }
    committed = _committed_baseline()
    # The committed JSON is a full-scale run; the small smoke scale
    # must not clobber it with reduced-stream numbers.
    if full_scale():
        save_committed("BENCH_service.json", payload)
        save_result("service_soak", _render(payload))
    else:
        print()
        print(_render(payload))

    # Correctness first: the session consumed the identical continuous
    # stream the serial baseline did, so its published reports must
    # match exactly — the queue changes *when* events are analyzed,
    # never *what* is diagnosed.
    assert session.events_analyzed == passes * event_count
    assert session.events_shed == 0
    assert session.reports_emitted == serial_reports
    assert sink_counts["reports"] == session.reports_emitted

    # Bounded state: a long-lived session must not grow with ingest.
    session.flush()
    assert session.queued == 0
    assert len(session.analyzer.window) <= ALPHA
    assert len(session.recent_reports) <= RETENTION
    assert not session.analyzer.reports, (
        "pipeline report log not drained — session memory would grow "
        "with every fault"
    )

    # Flat memory: heap after the last pass vs the steady state.
    assert growth <= MEMORY_GROWTH_CEILING, (
        f"traced heap grew {growth:.2f}x across {passes} passes "
        f"({heap_steady:,d} -> {heap_per_pass[-1]:,d} bytes); "
        f"ceiling {MEMORY_GROWTH_CEILING}x"
    )

    # Sustained throughput: the queue hand-off must stay in the noise
    # next to the pipeline itself.
    assert ratio >= TARGET_THROUGHPUT_RATIO, (
        f"service session sustained only {ratio:.2f}x the serial "
        f"drain ({service_eps:,.0f} vs {serial_eps:,.0f} events/s); "
        f"floor {TARGET_THROUGHPUT_RATIO}x"
    )
    # Drift gate: service-layer refactors must not erode the ratio.
    if full_scale() and committed is not None:
        assert_no_drift(
            "service/serial throughput ratio",
            ratio,
            committed["acceptance"]["achieved_throughput_ratio"],
        )


# ---------------------------------------------------------------------------
# The async ingest router: N producers x M tenants, process backend
# ---------------------------------------------------------------------------

def _async_leg(
    library, events, config, tenants, passes, stride, count,
    checkpoint_dir, heap_series=None,
):
    """One sweep point: ``tenants`` pump sessions on the process
    backend, one producer thread per tenant (a single producer per
    tenant preserves per-tenant stream order, so every tenant must
    emit an identical report log — asserted below).

    Pass structure mirrors the sync soak: per pass the producers
    submit concurrently, the service drains (a quiesce barrier), and
    the per-pass checkpoint is timed separately.  Pass 0 is an
    untimed warmup (worker-pool spawn, cold caches).  Returns the
    leg's payload fragment.
    """
    store = CheckpointStore(checkpoint_dir)
    service = StreamingService(
        library,
        config=config,
        queue_capacity=QUEUE_CAPACITY,
        policy="block",
        report_retention=RETENTION,
        checkpoint_store=store,
        shards=1,
        backend="process",
        async_ingest=True,
    )
    sink_counts = {"reports": 0}

    def _count(tenant, report):
        # Count only — retaining report objects would read as heap
        # growth (each holds its matched-event list).  Fires on pump
        # threads; the single shared counter update is GIL-atomic
        # enough for a tally that is only read after the final join.
        sink_counts["reports"] += 1

    service.on_report(_count)
    # Sessions (and their worker processes) exist before any producer
    # thread starts: fork from a quiet parent (docs/service.md).
    keys = [f"soak-{index}" for index in range(tenants)]
    for key in keys:
        service.session(key)

    elapsed = 0.0
    checkpoint_seconds = 0.0
    try:
        for index in range(passes + 1):
            replay = _pass_events(events, index, stride, count)
            timed = index > 0
            started = time.perf_counter()
            producers = [
                threading.Thread(
                    target=lambda key=key: [
                        service.submit(event, tenant=key)
                        for event in replay
                    ],
                    name=f"soak-producer-{key}",
                )
                for key in keys
            ]
            for producer in producers:
                producer.start()
            for producer in producers:
                producer.join()
            service.drain()
            if timed:
                elapsed += time.perf_counter() - started
            started = time.perf_counter()
            service.checkpoint_all()
            if timed:
                checkpoint_seconds += time.perf_counter() - started
            replay = None
            if heap_series is not None and timed:
                gc.collect()
                heap_series.append(tracemalloc.get_traced_memory()[0])

        service.flush()
        total = tenants * (passes + 1) * count
        stats = service.stats()
        per_tenant_reports = sorted(
            live.reports_emitted for live in service.sessions.values()
        )
        # No loss, no duplication, nothing left behind: every offer
        # was accepted (block policy), analyzed, and — because each
        # tenant consumed the identical stream in the identical order
        # — diagnosed identically.
        assert stats.events_submitted == total
        assert stats.events_accepted == total
        assert stats.events_analyzed == total
        assert stats.events_shed == 0
        assert stats.queued == 0
        assert stats.reports == sink_counts["reports"]
        assert per_tenant_reports[0] == per_tenant_reports[-1], (
            f"tenants diverged: per-tenant report counts "
            f"{per_tenant_reports}"
        )
        for live in service.sessions.values():
            assert len(live.recent_reports) <= RETENTION
    finally:
        service.shutdown()
    for live in service.sessions.values():
        assert not live.pump_alive

    eps = (tenants * passes * count) / elapsed
    return {
        "tenants": tenants,
        "producers": tenants,
        "passes": passes,
        "events": total,
        "events_per_s": round(eps, 1),
        "events_accepted": stats.events_accepted,
        "reports_per_tenant": per_tenant_reports[0],
        "checkpoints_written": stats.checkpoints_written,
        "checkpoint_seconds": round(checkpoint_seconds, 3),
    }


def _run_oracles(library, events, config):
    """The committed artifact carries its own correctness record:
    checkpoint oracle (sync router) plus the async oracle on both
    analyzer backends."""
    checkpoint = verify_checkpoint(
        events, library, cuts=2, config=config, strict=True,
    )
    async_inline = verify_async(
        events, library, tenants=4, producers=4, config=config,
        strict=True,
    )
    async_process = verify_async(
        events, library, tenants=4, producers=4, config=config,
        shards=1, backend="process", strict=True,
    )
    return {
        "verify_checkpoint": {
            "ok": checkpoint.ok,
            "events": len(events),
            "cuts": len(checkpoint.cuts),
        },
        "verify_async_inline": {
            "ok": async_inline.ok,
            "events": async_inline.events,
            "reports": async_inline.async_reports,
        },
        "verify_async_process": {
            "ok": async_process.ok,
            "events": async_process.events,
            "reports": async_process.async_reports,
        },
    }


def _render_async(payload):
    lines = [
        "service async soak — pump router, process backend "
        f"(scale: {payload['scale']})",
        "",
    ]
    for leg in payload["sweep"]:
        lines.append(
            f"{leg['tenants']:>8d} tenant(s) "
            f"{leg['events_per_s']:12,.0f} events/s"
            f"  ({leg['passes']}x{payload['events_per_pass']} "
            f"events each, {leg['reports_per_tenant']} reports/tenant)"
        )
    speedup = payload["speedup_vs_sync"]
    lines += [
        "",
        f"{'sync-router baseline':>22s} "
        f"{payload['sync_baseline_events_per_s'] or 0:12,.0f} events/s"
        "  (committed BENCH_service.json)",
        f"{'4-tenant speedup':>22s} "
        + (f"{speedup:11.2f}x" if speedup else "        n/a")
        + f"  (scaling 1->4: {payload['tenant_scaling']:.2f}x)",
        "",
        f"{'steady-state heap':>22s} "
        f"{payload['heap_steady_bytes']:12,d} B",
        f"{'heap after last pass':>22s} "
        f"{payload['heap_last_bytes']:12,d} B"
        f"  (growth {payload['heap_growth']:.2f}x)",
        "",
        "oracles: " + ", ".join(
            f"{name} {'PASS' if record['ok'] else 'FAIL'}"
            for name, record in payload["oracles"].items()
        ),
    ]
    return "\n".join(lines)


def test_service_async_soak(character, save_result, tmp_path):
    library = character.library
    sweep = ASYNC_SWEEP_FULL if full_scale() else ASYNC_SWEEP_SMALL
    event_count = 60_000 if full_scale() else 12_000
    oracle_count = 20_000 if full_scale() else 6_000
    stream = SyntheticStream(
        library, library.symbols, fault_every=FAULT_EVERY, seed=SEED,
    )
    events = stream.events(event_count)
    config = GretelConfig(alpha=ALPHA)
    stride = (
        events[-1].ts_response - events[0].ts_request
        + 1.0 / stream.rate_pps
    )

    # The whole sweep runs under tracemalloc, like the sync soak it
    # is compared against (the committed BENCH_service.json numbers
    # were measured with it on).
    gc.collect()
    tracemalloc.start()
    heap_series = []
    legs = []
    for tenants, passes in sweep:
        legs.append(_async_leg(
            library, events, config, tenants, passes, stride,
            event_count, tmp_path / f"async-ckpt-{tenants}",
            # The memory series tracks the biggest leg — the one the
            # flat-memory claim is about.
            heap_series=heap_series if tenants == 4 else None,
        ))
    tracemalloc.stop()

    by_tenants = {leg["tenants"]: leg for leg in legs}
    scaling = (
        by_tenants[4]["events_per_s"] / by_tenants[1]["events_per_s"]
    )
    heap_steady = heap_series[min(1, len(heap_series) - 1)]
    growth = heap_series[-1] / heap_steady

    # The speedup target compares full-scale numbers only: the
    # committed sync baseline is a full-scale run, and a reduced
    # smoke stream would flatter (cold detectors) or slander (warmup
    # amortized over fewer events) the ratio arbitrarily.
    sync_committed = _committed_baseline()
    sync_eps = (
        sync_committed["service_events_per_s"]
        if full_scale() and sync_committed is not None else None
    )
    speedup = (
        round(by_tenants[4]["events_per_s"] / sync_eps, 4)
        if sync_eps else None
    )

    oracles = _run_oracles(library, events[:oracle_count], config)

    cores = os.cpu_count() or 1
    scaling_floor = (
        TARGET_TENANT_SCALING
        if cores > 1
        else SINGLE_CORE_COLLAPSE_FLOOR
    )

    payload = {
        "scale": "full" if full_scale() else "small",
        "events_per_pass": event_count,
        "alpha": ALPHA,
        "queue_capacity": QUEUE_CAPACITY,
        "report_retention": RETENTION,
        "policy": "block",
        "backend": "process",
        "shards_per_tenant": 1,
        "sweep": legs,
        "sync_baseline_events_per_s": sync_eps,
        "speedup_vs_sync": speedup,
        "tenant_scaling": round(scaling, 4),
        "heap_steady_bytes": heap_steady,
        "heap_last_bytes": heap_series[-1],
        "heap_growth": round(growth, 4),
        "oracles": oracles,
        "acceptance": {
            "target_speedup_vs_sync": TARGET_ASYNC_SPEEDUP,
            "achieved_speedup_vs_sync": speedup,
            "target_tenant_scaling": TARGET_TENANT_SCALING,
            "tenant_scaling_floor_applied": scaling_floor,
            "runner_cpu_count": cores,
            "achieved_tenant_scaling": round(scaling, 4),
            "memory_growth_ceiling": MEMORY_GROWTH_CEILING,
            "achieved_memory_growth": round(growth, 4),
        },
    }
    committed = load_committed("BENCH_service_async.json")
    if full_scale():
        save_committed("BENCH_service_async.json", payload)
        save_result("service_async_soak", _render_async(payload))
    else:
        print()
        print(_render_async(payload))

    # Correctness: both differential oracles must hold on the very
    # stream the numbers were measured on.
    assert all(record["ok"] for record in oracles.values()), oracles

    # Flat memory under concurrent multi-tenant ingest.
    assert growth <= MEMORY_GROWTH_CEILING, (
        f"traced heap grew {growth:.2f}x across the 4-tenant soak "
        f"({heap_steady:,d} -> {heap_series[-1]:,d} bytes); "
        f"ceiling {MEMORY_GROWTH_CEILING}x"
    )

    # Aggregate throughput must scale with tenant count: the front
    # door is no longer one thread.  Full scale only — a smoke
    # sweep's slope is noise — and core-aware (see the constants
    # block).
    if full_scale():
        assert scaling >= scaling_floor, (
            f"4-tenant aggregate only {scaling:.2f}x the 1-tenant "
            f"aggregate; floor {scaling_floor}x ({cores} core(s))"
        )

    # The headline gate (full scale): 4-tenant async ingest vs the
    # committed sync-router service baseline.
    if speedup is not None:
        assert speedup >= TARGET_ASYNC_SPEEDUP, (
            f"4-tenant async router sustained only {speedup:.2f}x "
            f"the committed sync-router baseline "
            f"({by_tenants[4]['events_per_s']:,.0f} vs "
            f"{sync_eps:,.0f} events/s); floor "
            f"{TARGET_ASYNC_SPEEDUP}x"
        )
    # Drift gate: later refactors must not erode the speedup.
    if full_scale() and committed is not None:
        assert_no_drift(
            "async/sync 4-tenant speedup",
            speedup,
            committed["acceptance"]["achieved_speedup_vs_sync"],
        )
