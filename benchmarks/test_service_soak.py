"""Streaming-service soak: one long-lived tenant session under load.

Replays the Fig. 8c synthetic stream (60K events at full scale) as
one *continuous* multi-pass feed — 10× the stream at full scale, with
timestamps and sequence numbers advancing across passes —
checkpointing to disk every pass, and asserts the three properties a
standing service must hold that a batch drain never exercises:

* **flat memory** — traced heap (``tracemalloc``) after the last pass
  stays within a small factor of the steady-state reference (taken
  after pass 2, once warmup caches and the retention ring have
  filled): the session's retention hand-off really does bound state
  by α + queue capacity + the retention ring, not by events ingested;
* **bounded state** — window ≤ α, queue empty post-flush, retention
  ring ≤ its cap, the pipeline's report log drained;
* **sustained throughput** — streaming-path events/s ≥ 90% of an
  in-run serial baseline draining the *same continuous multi-pass
  stream* (so both halves do steady-state work — warmed level-shift
  detectors cost more per event than a cold single pass), drift-gated
  against the committed full-scale baseline like every other
  benchmark.  Checkpoint writes are timed separately: a snapshot
  costs O(state), not O(events), so it amortizes with checkpoint
  interval instead of scaling with ingest.

Both halves run under tracemalloc — it slows allocation-heavy code
down several-fold, so timing one half outside it would skew the
ratio arbitrarily.

Artifacts: ``results/BENCH_service.json`` (committed copy is a
full-scale run) and ``results/service_soak.txt``.
"""

import gc
import time
import tracemalloc
from dataclasses import replace

from conftest import (
    assert_no_drift,
    full_scale,
    load_committed,
    save_committed,
)

from repro.core.analyzer import GretelAnalyzer
from repro.core.config import GretelConfig
from repro.monitoring.store import MetadataStore
from repro.service import CheckpointStore, TenantSession
from repro.workloads.traffic import SyntheticStream

FAULT_EVERY = 1000
ALPHA = 768          # the paper's testbed α, as in Fig. 8c
SEED = 5             # the Fig. 8c stream seed
QUEUE_CAPACITY = 4096
#: Small on purpose: the flat-memory assertion below measures the
#: session, and a roomy ring still filling up would read as growth.
RETENTION = 8

#: Acceptance floors (ISSUE 8): the long-lived session must sustain
#: ≥ this fraction of the serial drain's events/s, and the traced
#: heap after the final pass must stay within this factor of the
#: steady-state reference.
TARGET_THROUGHPUT_RATIO = 0.9
MEMORY_GROWTH_CEILING = 1.35


def _committed_baseline():
    """The committed full-scale baseline payload, or None if absent."""
    return load_committed("BENCH_service.json")


def _pass_events(events, index, stride, count_stride):
    """Pass ``index`` of the continuous replay.

    Each pass advances timestamps and sequence numbers by one stream
    length — replaying identical timestamps would send time backwards
    at every pass boundary, which is a pathological stream (level-
    shift baselines invalidate, pending snapshots mis-order), not a
    soak.  Pass 0 is the original list, so the two halves below see
    byte-identical streams without holding ``passes`` copies alive.
    """
    if index == 0:
        return events
    dt = stride * index
    dseq = count_stride * index
    return [
        replace(
            event,
            seq=event.seq + dseq,
            ts_request=event.ts_request + dt,
            ts_response=event.ts_response + dt,
        )
        for event in events
    ]


def _drain_serial(library, events, config, passes, stride, count):
    """In-run baseline: one batch analyzer draining the same
    continuous multi-pass stream; returns (events/s, reports)."""
    analyzer = GretelAnalyzer(
        library, store=MetadataStore(), config=config,
    )
    on_event = analyzer.on_event
    started = time.perf_counter()
    for index in range(passes):
        for event in _pass_events(events, index, stride, count):
            on_event(event)
    elapsed = time.perf_counter() - started
    return (passes * count) / elapsed, len(analyzer.reports)


def _render(payload):
    lines = [
        "service soak — one tenant session, "
        f"{payload['passes']}x {payload['events_per_pass']} events "
        f"(scale: {payload['scale']})",
        "",
        f"{'serial drain':>22s} {payload['serial_events_per_s']:12,.0f}"
        " events/s",
        f"{'service session':>22s} {payload['service_events_per_s']:12,.0f}"
        " events/s"
        f"  (ratio {payload['throughput_ratio']:.2f})",
        "",
        f"{'steady-state heap':>22s} {payload['heap_steady_bytes']:12,d} B"
        "  (after pass 2)",
        f"{'heap after last pass':>22s} {payload['heap_last_bytes']:12,d} B"
        f"  (growth {payload['heap_growth']:.2f}x)",
        "",
        f"reports: {payload['reports']}, checkpoints: "
        f"{payload['checkpoints_written']} "
        f"({payload['checkpoint_seconds']:.2f}s), "
        f"{payload['events_shed']} events shed",
    ]
    return "\n".join(lines)


def test_service_soak(character, save_result, tmp_path):
    library = character.library
    passes = 10 if full_scale() else 3
    event_count = 60_000 if full_scale() else 12_000
    stream = SyntheticStream(
        library, library.symbols, fault_every=FAULT_EVERY, seed=SEED,
    )
    events = stream.events(event_count)
    config = GretelConfig(alpha=ALPHA)
    stride = (
        events[-1].ts_response - events[0].ts_request
        + 1.0 / stream.rate_pps
    )

    # Untimed warmup: the first drain pays one-off costs (lazy catalog
    # construction, symbol-encode caches) that would otherwise land
    # entirely on whichever half runs first.
    _drain_serial(library, events, config, 1, stride, event_count)

    gc.collect()
    tracemalloc.start()
    serial_eps, serial_reports = _drain_serial(
        library, events, config, passes, stride, event_count,
    )

    store = CheckpointStore(tmp_path / "soak-checkpoints")
    session = TenantSession(
        "soak",
        GretelAnalyzer(library, store=MetadataStore(), config=config),
        queue_capacity=QUEUE_CAPACITY,
        policy="block",
        report_retention=RETENTION,
    )
    sink_counts = {"reports": 0}

    def _count(tenant, report):
        # Count only — a sink that retains report objects (each holds
        # its matched-event list) would read as heap growth.
        sink_counts["reports"] += 1

    session.on_report(_count)

    heap_per_pass = []
    elapsed = 0.0
    checkpoint_seconds = 0.0
    for index in range(passes):
        # The streaming path is on the throughput clock — replay
        # construction mirrors the serial half, submit/drain is the
        # session.  The per-pass checkpoint is timed separately: its
        # cost is constant per snapshot (state size ~α + queue), not
        # per event, so it amortizes with pass length instead of
        # scaling with it.  The gc + heap probe is instrumentation.
        started = time.perf_counter()
        replay = _pass_events(events, index, stride, event_count)
        for event in replay:
            session.submit(event)
        session.drain()
        elapsed += time.perf_counter() - started
        started = time.perf_counter()
        store.save("soak", session.snapshot_state(),
                   seq=session.events_ingested)
        checkpoint_seconds += time.perf_counter() - started
        # Release this pass's replay copy before measuring, so the
        # heap series tracks the session, not the measurement loop.
        replay = None
        gc.collect()
        heap_per_pass.append(tracemalloc.get_traced_memory()[0])
    tracemalloc.stop()
    service_eps = (passes * event_count) / elapsed

    # Steady-state heap reference: after pass 2 the warmup caches are
    # built and the retention ring holds full-stream reports; from
    # there on the session must be flat.
    heap_steady = heap_per_pass[min(1, len(heap_per_pass) - 1)]
    growth = heap_per_pass[-1] / heap_steady
    ratio = service_eps / serial_eps

    payload = {
        "scale": "full" if full_scale() else "small",
        "passes": passes,
        "events_per_pass": event_count,
        "alpha": ALPHA,
        "queue_capacity": QUEUE_CAPACITY,
        "report_retention": RETENTION,
        "serial_events_per_s": round(serial_eps, 1),
        "service_events_per_s": round(service_eps, 1),
        "throughput_ratio": round(ratio, 4),
        "heap_steady_bytes": heap_steady,
        "heap_last_bytes": heap_per_pass[-1],
        "heap_growth": round(growth, 4),
        "reports": session.reports_emitted,
        "events_shed": session.events_shed,
        "checkpoints_written": store.writes,
        "checkpoint_seconds": round(checkpoint_seconds, 3),
        "acceptance": {
            "target_throughput_ratio": TARGET_THROUGHPUT_RATIO,
            "achieved_throughput_ratio": round(ratio, 4),
            "memory_growth_ceiling": MEMORY_GROWTH_CEILING,
            "achieved_memory_growth": round(growth, 4),
        },
    }
    committed = _committed_baseline()
    # The committed JSON is a full-scale run; the small smoke scale
    # must not clobber it with reduced-stream numbers.
    if full_scale():
        save_committed("BENCH_service.json", payload)
        save_result("service_soak", _render(payload))
    else:
        print()
        print(_render(payload))

    # Correctness first: the session consumed the identical continuous
    # stream the serial baseline did, so its published reports must
    # match exactly — the queue changes *when* events are analyzed,
    # never *what* is diagnosed.
    assert session.events_analyzed == passes * event_count
    assert session.events_shed == 0
    assert session.reports_emitted == serial_reports
    assert sink_counts["reports"] == session.reports_emitted

    # Bounded state: a long-lived session must not grow with ingest.
    session.flush()
    assert session.queued == 0
    assert len(session.analyzer.window) <= ALPHA
    assert len(session.recent_reports) <= RETENTION
    assert not session.analyzer.reports, (
        "pipeline report log not drained — session memory would grow "
        "with every fault"
    )

    # Flat memory: heap after the last pass vs the steady state.
    assert growth <= MEMORY_GROWTH_CEILING, (
        f"traced heap grew {growth:.2f}x across {passes} passes "
        f"({heap_steady:,d} -> {heap_per_pass[-1]:,d} bytes); "
        f"ceiling {MEMORY_GROWTH_CEILING}x"
    )

    # Sustained throughput: the queue hand-off must stay in the noise
    # next to the pipeline itself.
    assert ratio >= TARGET_THROUGHPUT_RATIO, (
        f"service session sustained only {ratio:.2f}x the serial "
        f"drain ({service_eps:,.0f} vs {serial_eps:,.0f} events/s); "
        f"floor {TARGET_THROUGHPUT_RATIO}x"
    )
    # Drift gate: service-layer refactors must not erode the ratio.
    if full_scale() and committed is not None:
        assert_no_drift(
            "service/serial throughput ratio",
            ratio,
            committed["acceptance"]["achieved_throughput_ratio"],
        )
