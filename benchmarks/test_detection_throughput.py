"""Detection-throughput baseline: reference vs incremental scoring.

Replays the Fig. 8c synthetic stream (60K events at full scale, 1 REST
fault per 1000) with detection deferred, then times the detection
drain — the Algorithm 2 adaptive-buffer loop over every frozen
snapshot — with the from-scratch reference scorer
(``incremental_match=False``) and with the ``repro.core.matching``
engine (the production default).  Three oracles guard the speedup:

* ``verify_detection`` replays every snapshot through both scorers and
  requires bit-identical ``DetectionResult``s (ops, θ, β, coverages,
  matched events);
* ``verify_equivalence`` proves the sharded analyzer (which also runs
  the engine) report-identical to the serial one at 1/2/4/8 shards;
* a drift gate holds the achieved speedup to ≥ 90% of the committed
  full-scale baseline's.

Artifacts: ``results/BENCH_detection.json`` (machine readable; the
committed copy is a full-scale run) and
``results/detection_throughput.txt`` (rendered report, referenced from
EXPERIMENTS.md).
"""

import time
from dataclasses import asdict, replace

from conftest import (
    assert_no_drift,
    full_scale,
    load_committed,
    save_committed,
)

from repro.core.analyzer import GretelAnalyzer
from repro.core.config import GretelConfig
from repro.core.matching import verify_detection
from repro.core.parallel import ShardedAnalyzer, verify_equivalence
from repro.monitoring.store import MetadataStore
from repro.workloads.traffic import SyntheticStream

SHARD_COUNTS = (1, 2, 4, 8)
FAULT_EVERY = 1000
ALPHA = 768          # the paper's testbed α, as in Fig. 8c
SEED = 5             # the Fig. 8c stream seed
REPEATS = 3          # timing is best-of-N; fresh analyzer each run

#: Acceptance floor (ISSUE 4): incremental detection must drain the
#: full-scale snapshot backlog ≥ this × faster than the *committed*
#: pre-engine serial baseline (``detect_seconds`` in
#: ``results/BENCH_parallel_throughput.json``, recorded before this
#: engine existed).  Only meaningful at full scale on a machine
#: comparable to the one that recorded the baseline, so it is asserted
#: there and reported everywhere.
TARGET_SPEEDUP_VS_COMMITTED = 3.0
#: Floor against the same-run reference scorer.  Lower than the
#: committed-baseline target because this PR also speeds the
#: *reference* path up (per-API fragment cache, Counter-tightened
#: gate, lazy regex compile) — the fair like-for-like denominator for
#: the committed 3× claim is the committed baseline above.
TARGET_SPEEDUP = 2.0
SMOKE_SPEEDUP = 1.2


def _committed_baseline():
    """The committed full-scale baseline payload, or None if absent."""
    return load_committed("BENCH_detection.json")


def _committed_serial_detect_seconds():
    """The pre-engine serial detection drain (the PR's "before"): the
    committed full-scale parallel-throughput baseline's serial
    ``detect_seconds``, recorded with the from-scratch scorer."""
    payload = load_committed("BENCH_parallel_throughput.json")
    if payload is None:
        return None
    return payload.get("serial", {}).get("detect_seconds")


def _config(incremental):
    return GretelConfig(alpha=ALPHA, incremental_match=incremental)


def _time_detection(library, events, incremental):
    """Best-of-N detection-drain timing for one scorer; returns the
    sample plus the engine counters of the best run."""
    best = None
    for _ in range(REPEATS):
        analyzer = GretelAnalyzer(
            library, store=MetadataStore(), config=_config(incremental),
            track_latency=False, defer_detection=True,
        )
        analyzer.feed(events)
        analyzer.flush()
        started = time.perf_counter()
        snapshots = analyzer.process_deferred()
        detect = time.perf_counter() - started
        sample = {
            "detect_seconds": detect,
            "snapshots": snapshots,
            "reports": len(analyzer.reports),
            "engine": asdict(analyzer.pipeline.detector.matching_stats),
        }
        if best is None or detect < best["detect_seconds"]:
            best = sample
    return best


def _time_sharded_detection(library, events, shards, backend="inline"):
    best = None
    for _ in range(REPEATS):
        analyzer = ShardedAnalyzer(
            library, shards, store=MetadataStore(), config=_config(True),
            track_latency=False, defer_detection=True,
            backend=backend,
        )
        try:
            analyzer.ingest(events)
            analyzer.flush()
            started = time.perf_counter()
            snapshots = analyzer.process_deferred()
            detect = time.perf_counter() - started
            sample = {"detect_seconds": detect, "snapshots": snapshots,
                      "reports": len(analyzer.reports)}
        finally:
            analyzer.close()
        if best is None or detect < best["detect_seconds"]:
            best = sample
    return best


def _frozen_snapshots(library, events):
    """The stream's snapshots, frozen but not yet analyzed."""
    analyzer = GretelAnalyzer(
        library, store=MetadataStore(), config=_config(True),
        track_latency=False, defer_detection=True,
    )
    analyzer.feed(events)
    analyzer.flush()
    return analyzer.pipeline.deferred_snapshots()


def _render(payload):
    reference = payload["reference"]
    incremental = payload["incremental"]
    engine = incremental["engine"]
    lines = [
        "Detection-throughput baseline (Fig. 8c stream)",
        f"{payload['stream']['events']} events, 1 fault per "
        f"{payload['stream']['fault_every']}, alpha={ALPHA}, "
        f"scale={payload['scale']}, "
        f"{reference['snapshots']} snapshots",
        f"{'scorer':>12s} {'detect':>10s} {'per-snap':>10s} "
        f"{'speedup':>9s} {'oracle':>8s}",
        f"{'reference':>12s} {reference['detect_seconds']:8.3f}s "
        f"{reference['detect_seconds'] / reference['snapshots'] * 1e3:7.2f}ms"
        f" {'1.00x':>9s} {'--':>8s}",
        f"{'incremental':>12s} {incremental['detect_seconds']:8.3f}s "
        f"{incremental['detect_seconds'] / incremental['snapshots'] * 1e3:7.2f}"
        f"ms {payload['acceptance']['achieved_speedup_detect']:8.2f}x "
        f"{'PASS' if payload['equivalent_serial'] else 'FAIL':>8s}",
    ]
    versus = payload["acceptance"]["achieved_speedup_vs_committed_serial"]
    if versus is not None:
        lines.append(
            f"  vs committed pre-engine serial drain "
            f"({payload['acceptance']['committed_serial_detect_seconds']:.3f}"
            f"s): {versus:.2f}x"
        )
    lines += [
        "  engine: "
        f"{engine['candidates_gated']} gated, "
        f"{engine['blocks_built']} blocks, "
        f"{engine['lcs_row_extensions']} DP passes "
        f"({engine['rescore_hits']} span-cache hits), "
        f"{engine['lcs_symbols_fed']} symbols fed",
    ]
    for sample in payload["sharded"]:
        lines.append(
            f"{sample['shards']:10d}sh {sample['detect_seconds']:8.3f}s "
            f"{'':>10s} {'':>9s} "
            f"{'PASS' if sample['equivalent'] else 'FAIL':>8s}"
        )
    process = payload.get("process")
    if process is not None:
        lines.append(
            f"{'4sh-proc':>12s} {process['detect_seconds']:8.3f}s "
            f"{'':>10s} {'':>9s} "
            f"{'PASS' if process['equivalent'] else 'FAIL':>8s}"
        )
    return "\n".join(lines)


def test_detection_throughput_baseline(character, save_result):
    library = character.library
    event_count = 60_000 if full_scale() else 12_000
    stream = SyntheticStream(
        library, library.symbols, fault_every=FAULT_EVERY, seed=SEED,
    )
    events = stream.events(event_count)

    reference = _time_detection(library, events, incremental=False)
    incremental = _time_detection(library, events, incremental=True)
    speedup = (
        reference["detect_seconds"] / incremental["detect_seconds"]
    )

    # Oracle 1: per-snapshot bit-identical DetectionResults.
    snapshots = _frozen_snapshots(library, events)
    serial_oracle = verify_detection(
        snapshots, library, config=replace(_config(True)), strict=False,
    )

    # Oracle 2: the sharded engines (which run the same incremental
    # scorer) stay report-identical to the serial analyzer.
    sharded = []
    for shards in SHARD_COUNTS:
        sample = _time_sharded_detection(library, events, shards)
        oracle = verify_equivalence(
            events, library, shards, config=_config(True),
            track_latency=False, defer_detection=True, strict=False,
        )
        sample.update({"shards": shards, "equivalent": oracle.ok})
        sharded.append(sample)

    # Process-backend column at 4 shards: the same drain on a worker
    # pool.  Its wall-clock gate lives in test_parallel_process.py;
    # here it rides along with the cross-backend oracle.
    process = _time_sharded_detection(library, events, 4,
                                      backend="process")
    process_oracle = verify_equivalence(
        events, library, 4, config=_config(True), track_latency=False,
        defer_detection=True, strict=False, backend="process",
    )
    process.update({"shards": 4, "backend": "process",
                    "equivalent": process_oracle.ok})

    committed = _committed_baseline()
    committed_serial = _committed_serial_detect_seconds()
    speedup_vs_committed = (
        committed_serial / incremental["detect_seconds"]
        if committed_serial else None
    )

    payload = {
        "benchmark": "detection_throughput",
        "scale": "full" if full_scale() else "small",
        "stream": {
            "events": event_count,
            "fault_every": FAULT_EVERY,
            "alpha": ALPHA,
            "seed": SEED,
        },
        "reference": reference,
        "incremental": incremental,
        "equivalent_serial": serial_oracle.ok,
        "oracle_snapshots": serial_oracle.snapshots,
        "sharded": sharded,
        "process": process,
        "acceptance": {
            "target_speedup_detect": TARGET_SPEEDUP,
            "achieved_speedup_detect": speedup,
            "target_speedup_vs_committed_serial":
                TARGET_SPEEDUP_VS_COMMITTED,
            "committed_serial_detect_seconds": committed_serial,
            "achieved_speedup_vs_committed_serial": speedup_vs_committed,
        },
    }
    # The committed JSON is a full-scale run; the small smoke scale
    # must not clobber it with reduced-stream numbers.
    if full_scale():
        save_committed("BENCH_detection.json", payload)
        save_result("detection_throughput", _render(payload))
    else:
        print()
        print(_render(payload))

    # A speedup that changes any diagnosis is not a speedup.
    assert serial_oracle.ok, serial_oracle.summary()
    assert incremental["reports"] == reference["reports"]
    for sample in sharded:
        assert sample["equivalent"], (
            f"sharded run diverged from serial at {sample['shards']} shards"
        )
    assert process["equivalent"], (
        "process-backend run diverged from serial at 4 shards"
    )
    floor = TARGET_SPEEDUP if full_scale() else SMOKE_SPEEDUP
    assert speedup >= floor, (
        f"incremental detection speedup {speedup:.2f}x below the "
        f"{floor}x floor"
    )
    # The ISSUE acceptance bar: ≥3× over the committed pre-engine
    # serial drain (the like-for-like "before" — the same-run
    # reference above also benefits from this PR's gate/cache work).
    if full_scale() and speedup_vs_committed is not None:
        assert speedup_vs_committed >= TARGET_SPEEDUP_VS_COMMITTED, (
            f"detection drain {incremental['detect_seconds']:.3f}s is "
            f"only {speedup_vs_committed:.2f}x the committed serial "
            f"baseline's {committed_serial:.3f}s "
            f"(target {TARGET_SPEEDUP_VS_COMMITTED}x)"
        )
    # Drift gate: engine refactors must not erode the advantage.
    if full_scale() and committed is not None:
        assert_no_drift(
            "detection speedup",
            speedup,
            committed["acceptance"]["achieved_speedup_detect"],
        )
