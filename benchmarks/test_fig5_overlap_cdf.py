"""Fig. 5 — Compute-operation fingerprint overlap CDF."""

from repro.evaluation import fig5


def test_regenerate_fig5(character, save_result):
    series = fig5.run(character)
    save_result("fig5", fig5.format_report(series, character))
    # Shape: instance operations are substantially unique vs the
    # storage/image/misc categories, and nothing subsumes them.
    assert max(series["all"]) < 0.5
    assert fig5.paper_scale_projection(character, series) > 0.85


def test_overlap_computation_cost(benchmark, character):
    result = benchmark(fig5.run, character)
    assert result["all"]
