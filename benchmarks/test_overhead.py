"""§7.4.2 — analyzer CPU share and memory under 100 parallel tests."""

from repro.evaluation import overhead


def test_regenerate_overhead(character, save_result):
    result = overhead.run(character, concurrency=100)
    save_result("overhead", overhead.format_report(result))
    assert result.events_processed > 500
    # Shape: at the paper's real-time event rate the analyzer is a few
    # percent of one core, and its footprint stays modest
    # (paper: ~4.3% CPU, ~123 MB).
    assert result.projected_share() < 0.10
    assert result.peak_memory_mb < 500
