#!/usr/bin/env python3
"""Operator workflow: fold fault-report cascades into exportable incidents.

One broken dependency typically produces a *cascade* of error messages
(the paper's §7.2.4: a 401 from Keystone plus the 503 the blocked
service answers).  GRETEL emits one report per REST error; the
:class:`repro.IncidentAggregator` extension folds them into one
incident per underlying problem and exports operator-ready JSON.

This demo breaks two independent things in sequence — NTP on the
Cinder node, then (after repairing it) the disk on the Glance node —
and shows each burst of cascading reports collapsing into one incident
per underlying problem, exported as operator-ready JSON.

Run:  python examples/incident_export.py
"""

import random

from repro import IncidentAggregator, WorkloadRunner
from repro.evaluation.common import (
    default_characterization,
    default_suite,
    make_monitored_analyzer,
)


def main() -> None:
    character = default_characterization()
    suite = default_suite()
    cloud, plane, analyzer = make_monitored_analyzer(character, seed=88)
    runner = WorkloadRunner(cloud)
    rng = random.Random(2)

    print("Phase 1: stopping NTP on cinder-node (clock skew -> 401s)")
    cloud.faults.crash_process("cinder-node", "ntp")
    tests = [next(t for t in suite.tests
                  if t.name.startswith("storage.queries"))] + suite.sample(8, rng)
    outcomes = runner.run_concurrent(tests, stagger=0.05, settle=2.0)
    failed = sum(1 for o in outcomes if not o.ok)
    print(f"  {failed} operations failed")

    print("Phase 2: NTP repaired; now the glance-node disk fills up")
    cloud.faults.restart_process("cinder-node", "ntp")
    cloud.settle(30.0)  # quiet gap between the two incidents
    cloud.faults.fill_disk("glance-node", leave_free_gb=5.5)
    upload = next(t for t in suite.tests
                  if t.name.startswith("image.upload")
                  and t.variant.get("size_gb") == 2.0)
    outcomes = runner.run_concurrent([upload] + suite.sample(4, rng),
                                     stagger=0.05, settle=2.0)
    failed = sum(1 for o in outcomes if not o.ok)
    print(f"  {failed} operations failed")
    analyzer.flush()
    print(f"\nGRETEL raised {len(analyzer.reports)} fault reports in total\n")

    aggregator = IncidentAggregator(window=10.0)
    aggregator.add_all(analyzer.reports)
    for incident in aggregator.incidents:
        print(incident.summary())

    path = "/tmp/gretel-incidents.json"
    aggregator.export_json(path)
    print(f"\nExported {len(aggregator.incidents)} incident(s) to {path}")


if __name__ == "__main__":
    main()
