#!/usr/bin/env python3
"""§3.1.3 — pinpointing one failed operation among many parallel ones.

A production-like mix of 120 concurrent administrative operations runs
against the cloud; exactly one of them (a volume-attach scenario) is
made faulty.  Log analysis sees nothing at ERROR level; HANSEL reports
a low-level message chain 30+ seconds later; GRETEL names the faulty
high-level operation within its sliding window.

Run:  python examples/parallel_fault_localization.py
"""

import random

from repro import Cloud, GretelAnalyzer, GretelConfig, MonitoringPlane, WorkloadRunner
from repro.baselines.hansel import HanselAnalyzer
from repro.baselines.loganalysis import LogAnalysisBaseline
from repro.evaluation.common import default_characterization, default_suite, p_rate_for


def main() -> None:
    character = default_characterization()
    suite = default_suite()

    cloud = Cloud(seed=77)
    plane = MonitoringPlane(cloud)
    analyzer = GretelAnalyzer(
        character.library, store=plane.store,
        config=GretelConfig(p_rate=p_rate_for(120)),
        track_latency=False,
    )
    plane.subscribe_events(analyzer.on_event)
    plane.start()

    hansel = HanselAnalyzer()
    wire_log = []
    cloud.taps.attach_global(hansel.on_event)
    cloud.taps.attach_global(wire_log.append)

    rng = random.Random(4)
    mix = suite.sample(120, rng)
    faulty = next(t for t in suite.tests
                  if t.name.startswith("compute.attach_volume"))
    cloud.faults.inject_api_error(
        "rest:nova:POST:/v2.1/servers/{id}/os-volume_attachments",
        500, "volume attach failed", count=1, op_id=faulty.test_id,
    )

    print(f"Running {len(mix)} healthy operations + 1 faulty "
          f"({faulty.name}) concurrently...")
    outcomes = WorkloadRunner(cloud).run_concurrent(
        mix + [faulty], stagger=0.01, settle=2.0
    )
    analyzer.flush()
    hansel.flush()

    failed = [o for o in outcomes if not o.ok]
    print(f"Outcomes: {len(outcomes) - len(failed)} ok, {len(failed)} failed\n")

    print("--- log analysis ---")
    logs = LogAnalysisBaseline()
    logs.ingest(wire_log)
    for level in ("ERROR", "WARNING"):
        diagnosis = logs.diagnose(level)
        print(f"  at {level}: found_anything={diagnosis['found_anything']} "
              f"(after {diagnosis['answer_latency']:.0f}s of collation)")

    print("\n--- HANSEL ---")
    for report in hansel.reports[:2]:
        print(f"  chain of {report.chain_length} messages ending at "
              f"{report.fault_event.method} {report.fault_event.name}; "
              f"reported {report.reporting_latency:.0f}s after the fault; "
              f"no operation name, no root cause")

    print("\n--- GRETEL ---")
    for report in analyzer.operational_reports[:3]:
        hit = faulty.test_id in report.detection.operations
        print(f"  fault {report.fault_event.method} {report.fault_event.name} "
              f"[{report.fault_event.status}]")
        print(f"    matched {len(report.detection.matched)} operation(s), "
              f"theta={report.theta:.4f}, "
              f"ground-truth operation in set: {hit}")
        print(f"    reported {report.report_delay:.2f}s after the fault")


if __name__ == "__main__":
    main()
