#!/usr/bin/env python3
"""§3.1.3 — pinpointing one failed operation among many parallel ones.

A production-like mix of 120 concurrent administrative operations runs
against the cloud; exactly one of them (a volume-attach scenario) is
made faulty.  Log analysis sees nothing at ERROR level; HANSEL reports
a low-level message chain 30+ seconds later; GRETEL names the faulty
high-level operation within its sliding window.

The live consumer is the *sharded* analyzer (``repro.core.parallel``),
built here via ``PipelineBuilder.build_sharded`` with a ``StageTimer``
middleware shared by every shard: wire events stream into
per-capture-agent worker shards, each composing its own pipeline
(sliding window, detector, ...), and reports merge deterministically.
Partitioning must keep fault contexts partition-local: on this
single-cell topology the REST control plane (every symbol fingerprint
matching uses, since RPCs are pruned, §6) egresses from the controller
agents, so those agents form one partition while each compute agent —
emitting only RPC traffic — gets its own.  The differential oracle
(``verify_equivalence``) re-checks at the end that the sharded
diagnosis is identical to a serial replay of the same wire log.

Run:  python examples/parallel_fault_localization.py
"""

import random

from repro import Cloud, GretelConfig, MonitoringPlane, PipelineBuilder, WorkloadRunner
from repro.baselines.hansel import HanselAnalyzer
from repro.core.pipeline import StageTimer
from repro.baselines.loganalysis import LogAnalysisBaseline
from repro.core.parallel import verify_equivalence
from repro.evaluation.common import default_characterization, default_suite, p_rate_for
from repro.openstack.topology import default_topology


def agent_partition_key(compute_nodes):
    """Shard key: one partition for the API control plane's agents,
    one per compute agent (their egress is RPC-only, pruned from
    matching anyway)."""
    def key(event):
        node = event.src_node
        return node if node in compute_nodes else "api-plane"
    return key


def main() -> None:
    character = default_characterization()
    suite = default_suite()

    cloud = Cloud(seed=77)
    plane = MonitoringPlane(cloud)
    computes = {node.name for node in default_topology().compute_nodes()}
    shard_key = agent_partition_key(computes)
    timer = StageTimer()
    analyzer = (
        PipelineBuilder(character.library)
        .with_store(plane.store)
        .with_config(GretelConfig(p_rate=p_rate_for(120)))
        .track_latency(False)
        .with_middleware(timer)
        .build_sharded(4, key=shard_key)
    )
    plane.subscribe_events(analyzer.on_event)
    plane.start()

    hansel = HanselAnalyzer()
    wire_log = []
    cloud.taps.attach_global(hansel.on_event)
    cloud.taps.attach_global(wire_log.append)

    rng = random.Random(4)
    mix = suite.sample(120, rng)
    faulty = next(t for t in suite.tests
                  if t.name.startswith("compute.attach_volume"))
    cloud.faults.inject_api_error(
        "rest:nova:POST:/v2.1/servers/{id}/os-volume_attachments",
        500, "volume attach failed", count=1, op_id=faulty.test_id,
    )

    print(f"Running {len(mix)} healthy operations + 1 faulty "
          f"({faulty.name}) concurrently...")
    outcomes = WorkloadRunner(cloud).run_concurrent(
        mix + [faulty], stagger=0.01, settle=2.0
    )
    analyzer.flush()
    hansel.flush()

    failed = [o for o in outcomes if not o.ok]
    print(f"Outcomes: {len(outcomes) - len(failed)} ok, {len(failed)} failed\n")

    print("--- log analysis ---")
    logs = LogAnalysisBaseline()
    logs.ingest(wire_log)
    for level in ("ERROR", "WARNING"):
        diagnosis = logs.diagnose(level)
        print(f"  at {level}: found_anything={diagnosis['found_anything']} "
              f"(after {diagnosis['answer_latency']:.0f}s of collation)")

    print("\n--- HANSEL ---")
    for report in hansel.reports[:2]:
        print(f"  chain of {report.chain_length} messages ending at "
              f"{report.fault_event.method} {report.fault_event.name}; "
              f"reported {report.reporting_latency:.0f}s after the fault; "
              f"no operation name, no root cause")

    print("\n--- GRETEL (4-shard) ---")
    nodes_per_shard = {}
    for node, shard in analyzer.assignment.items():
        nodes_per_shard.setdefault(shard, []).append(node)
    for shard, nodes in sorted(nodes_per_shard.items()):
        print(f"  shard {shard}: partition(s) {', '.join(sorted(nodes))}")
    for report in analyzer.operational_reports[:3]:
        hit = faulty.test_id in report.detection.operations
        print(f"  fault {report.fault_event.method} {report.fault_event.name} "
              f"[{report.fault_event.status}]")
        print(f"    matched {len(report.detection.matched)} operation(s), "
              f"theta={report.theta:.4f}, "
              f"ground-truth operation in set: {hit}")
        print(f"    reported {report.report_delay:.2f}s after the fault")

    print("\n  per-stage wall clock across all 4 shards (StageTimer):")
    for line in timer.summary().splitlines():
        print(f"    {line}")

    print("\n--- differential oracle (serial vs sharded on the wire log) ---")
    result = verify_equivalence(
        wire_log, character.library, shards=4, key=shard_key,
        config=GretelConfig(p_rate=p_rate_for(120)),
        track_latency=False, strict=False,
    )
    print(f"  {result.summary()}")


if __name__ == "__main__":
    main()
