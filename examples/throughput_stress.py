#!/usr/bin/env python3
"""§7.4.1 — stress-testing the analyzer with synthetic event streams.

Replays fabricated REST/RPC streams (the tcpreplay substitute) through
the GRETEL event receiver and the HANSEL baseline at fault frequencies
from 1/100 to 1/2000 messages, printing events/second and Mbps for
each — the data behind Fig. 8c.

Run:  python examples/throughput_stress.py
"""

from repro.evaluation import fig8c
from repro.evaluation.common import default_characterization


def main() -> None:
    character = default_characterization()
    print("Measuring GRETEL and HANSEL on identical synthetic streams "
          "(30K events per point)...\n")
    points = fig8c.run(character, events_per_point=30_000)
    print(fig8c.format_report(points))


if __name__ == "__main__":
    main()
