#!/usr/bin/env python3
"""§3.1.2 / §7.2.2 — localizing a performance fault (no error anywhere).

Operations keep *succeeding*, just slowly: a CPU surge on the Neutron
server inflates the latency of its port APIs.  Nothing is logged at
any level; HANSEL never triggers (no operational error exists).
GRETEL's level-shift detector flags the latency anomaly, fingerprints
identify the affected operation type, and root cause analysis finds
the CPU surge on the Neutron node.

Run:  python examples/performance_bottleneck.py
"""

from repro.evaluation import fig6
from repro.evaluation.common import default_characterization


def main() -> None:
    character = default_characterization()
    print("Running a sustained parallel workload with a CPU surge on "
          "the Neutron server mid-run...")
    result = fig6.run(character, concurrency=200, duration=50.0, seed=9)

    print(fig6.format_report(result))

    print("\nLevel-shift alarms (observed vs baseline latency):")
    for ts, observed, baseline in result.alarms[:8]:
        print(f"  t={ts:7.2f}s  {baseline * 1000:6.2f} ms -> "
              f"{observed * 1000:6.2f} ms")

    print("\nPerformance fault reports:")
    for report in result.reports[:4]:
        print(f"  {report.summary()}")

    if result.cpu_root_cause_found:
        print("\nGRETEL attributed the latency increase to CPU pressure "
              "on neutron-ctl — the paper's §7.2.2 diagnosis.")
    else:
        print("\nRoot cause not found (try a longer run).")


if __name__ == "__main__":
    main()
