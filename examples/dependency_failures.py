#!/usr/bin/env python3
"""§7.2.1 / §7.2.4 — root causes hiding in dependencies, not services.

Two scenarios where the component reporting the error is *not* where
the problem lives:

* image uploads fail with **413 Request Entity Too Large** — the real
  cause is a nearly-full disk on the Glance node (§7.2.1);
* ``cinder list`` fails with "Unable to establish connection to
  Keystone" and the wire shows **401 Unauthorized** from Keystone —
  the real cause is a stopped NTP daemon on the *Cinder* node skewing
  token timestamps (§7.2.4).

Run:  python examples/dependency_failures.py
"""

from repro.evaluation import case_studies
from repro.evaluation.common import default_characterization


def main() -> None:
    character = default_characterization()

    print("=== Scenario A: failed image uploads (§7.2.1) ===")
    result = case_studies.failed_image_upload(character)
    print(result.summary())
    for report in result.reports:
        print(f"  wire: {report.fault_event.method} {report.fault_event.name} "
              f"-> {report.fault_event.status}")
        for cause in report.root_causes:
            print(f"  root cause: {cause}")

    print("\n=== Scenario B: NTP failure breaks authentication (§7.2.4) ===")
    result = case_studies.ntp_failure(character)
    print(result.summary())
    for report in result.reports:
        print(f"  wire: {report.fault_event.src_service} -> "
              f"{report.fault_event.dst_service} "
              f"{report.fault_event.name} [{report.fault_event.status}]")
        for cause in report.root_causes:
            print(f"  root cause: {cause}")

    print("\nIn both cases the failing API belongs to a healthy service; "
          "GRETEL's metadata search (Algorithm 3) walks from the error "
          "nodes to the dependency actually at fault.")


if __name__ == "__main__":
    main()
