#!/usr/bin/env python3
"""Quickstart: fingerprint a suite, break the cloud, let GRETEL explain.

Walks the full GRETEL pipeline in five steps:

1. generate the Tempest-like suite and characterize it offline
   (Algorithm 1 — operational fingerprints);
2. stand up a monitored deployment (network taps + collectd-style
   resource agents + dependency watchers on every node);
3. inject a fault: crash the Neutron Linux bridge agent on every
   hypervisor (the paper's §7.2.3 scenario);
4. run an administrative operation that trips over it;
5. print GRETEL's fault report: the offending API, the identified
   high-level operation(s), the precision θ, and the root cause.

Run:  python examples/quickstart.py
"""

from repro import Cloud, GretelAnalyzer, GretelConfig, MonitoringPlane, WorkloadRunner
from repro.evaluation.common import default_characterization, default_suite


def main() -> None:
    print("== 1. Characterizing the 1200-test suite (cached after first run)")
    character = default_characterization()
    print(f"   {len(character.library)} operational fingerprints, "
          f"largest = {character.fp_max} APIs")

    print("== 2. Deploying a monitored cloud")
    cloud = Cloud(seed=2026)
    plane = MonitoringPlane(cloud)
    analyzer = GretelAnalyzer(
        character.library,
        store=plane.store,
        config=GretelConfig(p_rate=150.0),
    )
    plane.subscribe_events(analyzer.on_event)
    plane.start()

    print("== 3. Injecting the fault: crashing every Linux bridge agent")
    downed = cloud.faults.crash_everywhere("neutron-plugin-linuxbridge-agent")
    print(f"   crashed on: {', '.join(downed)}")

    print("== 4. A tenant boots a VM...")
    suite = default_suite()
    boot = next(t for t in suite.tests if t.name.startswith("compute.boot_server"))
    outcome = WorkloadRunner(cloud).run_isolated(boot, settle=2.0)
    analyzer.flush()
    print(f"   operation ok={outcome.ok}")
    if outcome.error:
        print(f"   dashboard says: {outcome.error.splitlines()[0][:90]}")

    print("== 5. GRETEL's diagnosis")
    for report in analyzer.reports:
        print(f"   {report.summary()}")
        print(f"   precision theta = {report.theta:.4f} "
              f"({len(report.detection.matched)} of "
              f"{len(character.library)} operations matched)")

    ok = any(
        cause.subject == "neutron-plugin-linuxbridge-agent"
        for report in analyzer.reports for cause in report.root_causes
    )
    print(f"\nRoot cause (dead L2 agent) localized: {ok}")


if __name__ == "__main__":
    main()
