#!/usr/bin/env python3
"""Quickstart: fingerprint a suite, break the cloud, let GRETEL explain.

Walks the full GRETEL pipeline in five steps:

1. generate the Tempest-like suite and characterize it offline
   (Algorithm 1 — operational fingerprints);
2. stand up a monitored deployment (network taps + collectd-style
   resource agents + dependency watchers on every node) and build the
   analyzer with ``PipelineBuilder``, attaching a custom middleware (a
   per-stage latency histogram — see ``docs/architecture.md``);
3. inject a fault: crash the Neutron Linux bridge agent on every
   hypervisor (the paper's §7.2.3 scenario);
4. run an administrative operation that trips over it;
5. print GRETEL's fault report: the offending API, the identified
   high-level operation(s), the precision θ, and the root cause;
6. print where the analysis wall clock went, stage by stage.

Run:  python examples/quickstart.py
"""

from repro import Cloud, GretelConfig, MonitoringPlane, PipelineBuilder, WorkloadRunner
from repro.evaluation.common import default_characterization, default_suite


class StageLatencyHistogram:
    """Custom pipeline middleware: a log2 histogram of per-stage step
    latencies (anything with ``observe(stage, seconds, items)`` fits
    the ``StageObserver`` protocol)."""

    def __init__(self):
        self.buckets = {}

    def observe(self, stage, seconds, items):
        micros = max(1, int(seconds * 1e6))
        bucket = micros.bit_length() - 1   # floor(log2(µs))
        per_stage = self.buckets.setdefault(stage, {})
        per_stage[bucket] = per_stage.get(bucket, 0) + 1

    def render(self):
        lines = []
        for stage, histogram in sorted(self.buckets.items()):
            bars = "  ".join(
                f"~{2 ** bucket}µs ×{count}"
                for bucket, count in sorted(histogram.items())
            )
            lines.append(f"{stage:>10s}: {bars}")
        return "\n".join(lines)


def main() -> None:
    print("== 1. Characterizing the 1200-test suite (cached after first run)")
    character = default_characterization()
    print(f"   {len(character.library)} operational fingerprints, "
          f"largest = {character.fp_max} APIs")

    print("== 2. Deploying a monitored cloud")
    cloud = Cloud(seed=2026)
    plane = MonitoringPlane(cloud)
    histogram = StageLatencyHistogram()
    analyzer = (
        PipelineBuilder(character.library)
        .with_store(plane.store)
        .with_config(GretelConfig(p_rate=150.0))
        .with_middleware(histogram)
        .build_serial()
    )
    plane.subscribe_events(analyzer.on_event)
    plane.start()

    print("== 3. Injecting the fault: crashing every Linux bridge agent")
    downed = cloud.faults.crash_everywhere("neutron-plugin-linuxbridge-agent")
    print(f"   crashed on: {', '.join(downed)}")

    print("== 4. A tenant boots a VM...")
    suite = default_suite()
    boot = next(t for t in suite.tests if t.name.startswith("compute.boot_server"))
    outcome = WorkloadRunner(cloud).run_isolated(boot, settle=2.0)
    analyzer.flush()
    print(f"   operation ok={outcome.ok}")
    if outcome.error:
        print(f"   dashboard says: {outcome.error.splitlines()[0][:90]}")

    print("== 5. GRETEL's diagnosis")
    for report in analyzer.reports:
        print(f"   {report.summary()}")
        print(f"   precision theta = {report.theta:.4f} "
              f"({len(report.detection.matched)} of "
              f"{len(character.library)} operations matched)")

    ok = any(
        cause.subject == "neutron-plugin-linuxbridge-agent"
        for report in analyzer.reports for cause in report.root_causes
    )
    print(f"\nRoot cause (dead L2 agent) localized: {ok}")

    print("== 6. Per-stage latency histogram (custom middleware)")
    print(histogram.render())


if __name__ == "__main__":
    main()
