"""Tests for the log-analysis baseline."""

import pytest

from repro.openstack.apis import ApiKind
from repro.openstack.wire import WireEvent
from repro.baselines.loganalysis import LogAnalysisBaseline, synthesize_logs


def make_event(status=200, body="", noise=False):
    return WireEvent(
        seq=1, api_key="k", kind=ApiKind.REST, method="GET", name="/x",
        src_service="horizon", src_node="ctrl", src_ip="1",
        dst_service="nova", dst_node="nova-ctl", dst_ip="2",
        ts_request=0.0, ts_response=0.1, status=status, body=body, noise=noise,
    )


def test_success_logs_at_debug():
    records = synthesize_logs([make_event(status=200)])
    assert records[0].level == "DEBUG"


def test_no_valid_host_logs_at_warning_only():
    """§3.1.1: ERROR-level logs are empty for the scheduler failure."""
    records = synthesize_logs(
        [make_event(status=500, body="No valid host was found.")]
    )
    assert records[0].level == "WARNING"


def test_dependency_errors_reach_error_level():
    records = synthesize_logs([make_event(status=503, body="unreachable")])
    assert records[0].level == "ERROR"


def test_client_errors_log_info():
    records = synthesize_logs([make_event(status=404)])
    assert records[0].level == "INFO"


def test_noise_not_logged():
    assert synthesize_logs([make_event(noise=True)]) == []


def test_level_filtering():
    baseline = LogAnalysisBaseline()
    baseline.ingest([
        make_event(status=200),
        make_event(status=500, body="No valid host was found."),
        make_event(status=503, body="down"),
    ])
    assert len(baseline.visible_at("ERROR")) == 1
    assert len(baseline.visible_at("WARNING")) == 2
    assert len(baseline.visible_at("DEBUG")) == 3
    with pytest.raises(ValueError):
        baseline.visible_at("VERBOSE")


def test_diagnose_misses_warning_faults_at_error_level():
    """The paper's log-analysis failure mode: nothing at ERROR."""
    baseline = LogAnalysisBaseline()
    baseline.ingest([make_event(status=500, body="No valid host was found.")])
    at_error = baseline.diagnose("ERROR")
    at_warning = baseline.diagnose("WARNING")
    assert not at_error["found_anything"]
    assert at_warning["found_anything"]


def test_diagnose_includes_collation_delay():
    baseline = LogAnalysisBaseline(collation_delay=60.0)
    baseline.ingest([make_event(status=503)])
    assert baseline.diagnose("ERROR")["answer_latency"] == 60.0


def test_performance_faults_never_log():
    """§3.1.2: a slow-but-successful operation leaves no log trace."""
    slow = make_event(status=200)
    records = synthesize_logs([slow])
    assert all(r.level == "DEBUG" for r in records)
