"""Tests for the HANSEL baseline."""

from repro.openstack.apis import ApiKind
from repro.openstack.wire import WireEvent
from repro.baselines.hansel import HanselAnalyzer


def make_event(seq, ts, *, status=200, request_id="", resource_ids=(),
               tenant="t1"):
    return WireEvent(
        seq=seq, api_key="rest:nova:GET:/v2.1/servers", kind=ApiKind.REST,
        method="GET", name="/v2.1/servers",
        src_service="horizon", src_node="ctrl", src_ip="1",
        dst_service="nova", dst_node="nova-ctl", dst_ip="2",
        ts_request=ts - 0.01, ts_response=ts, status=status,
        request_id=request_id, resource_ids=tuple(resource_ids), tenant=tenant,
    )


def test_stitches_chain_by_request_id():
    hansel = HanselAnalyzer(bucket_window=5.0)
    for seq in range(5):
        hansel.on_event(make_event(seq, seq * 0.1, request_id="req-1"))
    hansel.on_event(make_event(5, 0.5, status=500, request_id="req-1"))
    hansel.flush()
    assert len(hansel.reports) == 1
    report = hansel.reports[0]
    assert report.chain_length == 6
    assert report.fault_event.status == 500


def test_unrelated_chains_not_included():
    hansel = HanselAnalyzer(bucket_window=5.0)
    hansel.on_event(make_event(1, 0.1, request_id="req-a", tenant="a"))
    hansel.on_event(make_event(2, 0.2, request_id="req-b", tenant="b"))
    hansel.on_event(make_event(3, 0.3, status=500, request_id="req-b",
                               tenant="b"))
    hansel.flush()
    assert len(hansel.reports) == 1
    assert hansel.reports[0].chain_length == 2


def test_common_tenant_links_operations():
    """§9.2: shared identifiers link a faulty op to successful ones."""
    hansel = HanselAnalyzer(bucket_window=5.0)
    hansel.on_event(make_event(1, 0.1, request_id="req-a", tenant="shared"))
    hansel.on_event(make_event(2, 0.2, request_id="req-b", tenant="shared"))
    hansel.on_event(make_event(3, 0.3, status=500, request_id="req-b",
                               tenant="shared"))
    hansel.flush()
    assert hansel.reports[0].chain_length == 3


def test_reporting_latency_is_bucketed():
    hansel = HanselAnalyzer(bucket_window=30.0)
    hansel.on_event(make_event(1, 0.0, status=500, request_id="r"))
    # Stream continues; the report appears once the bucket closes.
    for seq in range(2, 40):
        hansel.on_event(make_event(seq, seq * 1.0, request_id=f"x{seq}",
                                   tenant=f"t{seq}"))
        if hansel.reports:
            break
    assert hansel.reports
    assert hansel.reports[0].reporting_latency >= 30.0


def test_flush_uses_full_bucket_delay():
    hansel = HanselAnalyzer(bucket_window=30.0)
    hansel.on_event(make_event(1, 10.0, status=500, request_id="r"))
    hansel.flush()
    assert hansel.reports[0].reporting_latency == 30.0


def test_chain_only_includes_messages_before_fault():
    hansel = HanselAnalyzer(bucket_window=1.0)
    hansel.on_event(make_event(1, 0.1, request_id="r"))
    hansel.on_event(make_event(2, 0.2, status=500, request_id="r"))
    hansel.on_event(make_event(3, 0.3, request_id="r"))
    hansel.flush()
    assert [e.seq for e in hansel.reports[0].chain] == [1, 2]


def test_rpc_errors_do_not_trigger_reports():
    hansel = HanselAnalyzer()
    event = WireEvent(
        seq=1, api_key="rpc:nova:cast:build_and_run_instance",
        kind=ApiKind.RPC, method="cast", name="build_and_run_instance",
        src_service="nova", src_node="ctrl", src_ip="1",
        dst_service="nova", dst_node="compute-1", dst_ip="2",
        ts_request=0.0, ts_response=0.1, status=500,
    )
    hansel.on_event(event)
    hansel.flush()
    assert hansel.reports == []


def test_counters(small_character):
    from repro.workloads.traffic import SyntheticStream

    stream = SyntheticStream(small_character.library,
                             small_character.library.symbols, fault_every=200)
    hansel = HanselAnalyzer()
    hansel.feed(stream.generate(1000))
    assert hansel.events_processed == 1000
    assert hansel.bytes_processed > 0
