"""Tests for fingerprint generation (Algorithm 1) and the library."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.openstack.catalog import default_catalog
from repro.core.fingerprint import (
    Fingerprint,
    FingerprintLibrary,
    filter_noise,
    generate_fingerprint,
    longest_common_subsequence,
    prefix_lcs_lengths,
)
from repro.core.symbols import SymbolTable


@pytest.fixture(scope="module")
def catalog():
    return default_catalog()


@pytest.fixture(scope="module")
def symbols(catalog):
    return SymbolTable(catalog)


def keys(catalog, *specs):
    resolved = []
    for spec in specs:
        kind, service, method, name = spec
        if kind == "rest":
            resolved.append(catalog.find_rest(service, method, name).key)
        else:
            resolved.append(catalog.find_rpc(service, name).key)
    return resolved


# ---------------------------------------------------------------------------
# Noise filtering
# ---------------------------------------------------------------------------

def test_filter_drops_heartbeats(catalog):
    heartbeat = catalog.find_rpc("nova", "report_state").key
    boot = catalog.find_rest("nova", "POST", "/v2.1/servers").key
    assert filter_noise([heartbeat, boot, heartbeat], catalog) == [boot]


def test_filter_drops_keystone_rest(catalog):
    auth = catalog.find_rest("keystone", "POST", "/v3/auth/tokens").key
    users = catalog.find_rest("keystone", "GET", "/v3/users").key
    boot = catalog.find_rest("nova", "POST", "/v2.1/servers").key
    assert filter_noise([auth, users, boot], catalog) == [boot]


def test_filter_collapses_poll_loops(catalog):
    poll = catalog.find_rest("nova", "GET", "/v2.1/servers/{id}").key
    boot = catalog.find_rest("nova", "POST", "/v2.1/servers").key
    trace = [boot] + [poll] * 10
    assert filter_noise(trace, catalog) == [boot, poll]


def test_filter_keeps_nonconsecutive_reads(catalog):
    poll = catalog.find_rest("nova", "GET", "/v2.1/servers/{id}").key
    boot = catalog.find_rest("nova", "POST", "/v2.1/servers").key
    trace = [poll, boot, poll]
    assert filter_noise(trace, catalog) == [poll, boot, poll]


def test_filter_does_not_collapse_state_changes(catalog):
    boot = catalog.find_rest("nova", "POST", "/v2.1/servers").key
    assert filter_noise([boot, boot], catalog) == [boot, boot]


def test_filter_handles_empty_and_none_traces(catalog):
    assert filter_noise([], catalog) == []
    assert filter_noise(None, catalog) == []


def test_filter_all_noise_trace_yields_empty(catalog):
    heartbeat = catalog.find_rpc("nova", "report_state").key
    auth = catalog.find_rest("keystone", "POST", "/v3/auth/tokens").key
    assert filter_noise([heartbeat, auth, heartbeat], catalog) == []


def test_generate_with_all_noise_traces_yields_empty_fingerprint(
    catalog, symbols
):
    # All-noise traces must flow through LCS as clean empty sequences,
    # not raise from inside the pipeline.
    heartbeat = catalog.find_rpc("nova", "report_state").key
    fp = generate_fingerprint(
        "noisy-op", [[heartbeat], [heartbeat, heartbeat]], symbols, catalog
    )
    assert fp.symbols == ""
    assert fp.state_change_mask == ()


def test_noise_rules_registry_matches_filter_semantics(catalog):
    from repro.core.fingerprint import ALL_NOISE_RULES, NOISE_DROP_RULES

    assert [rule.rule_id for rule in ALL_NOISE_RULES] == [
        "noise-flag", "keystone-rest", "read-collapse",
    ]
    # Every rule can fire against the default catalog (lint NSE001
    # guards the same property).
    for rule in ALL_NOISE_RULES:
        assert any(rule.applies(api) for api in catalog.apis), rule.rule_id
    heartbeat = catalog.find_rpc("nova", "report_state")
    auth = catalog.find_rest("keystone", "POST", "/v3/auth/tokens")
    boot = catalog.find_rest("nova", "POST", "/v2.1/servers")
    assert any(rule.applies(heartbeat) for rule in NOISE_DROP_RULES)
    assert any(rule.applies(auth) for rule in NOISE_DROP_RULES)
    assert not any(rule.applies(boot) for rule in NOISE_DROP_RULES)


# ---------------------------------------------------------------------------
# LCS
# ---------------------------------------------------------------------------

def test_lcs_basics():
    assert longest_common_subsequence("abcde", "ace") == list("ace")
    assert longest_common_subsequence("", "abc") == []
    assert longest_common_subsequence("abc", "xyz") == []
    assert longest_common_subsequence("abc", "abc") == list("abc")


@given(st.text(alphabet="abcd", max_size=15), st.text(alphabet="abcd", max_size=15))
@settings(max_examples=200)
def test_lcs_properties(a, b):
    result = longest_common_subsequence(a, b)
    # Result is a subsequence of both inputs.
    for source in (a, b):
        position = -1
        for ch in result:
            position = source.find(ch, position + 1)
            assert position >= 0
    # Symmetric in length.
    assert len(result) == len(longest_common_subsequence(b, a))
    # Bounded by the shorter input.
    assert len(result) <= min(len(a), len(b))


@given(st.text(alphabet="abcd", max_size=20))
def test_lcs_identity(a):
    assert longest_common_subsequence(a, a) == list(a)


# ---------------------------------------------------------------------------
# prefix_lcs_lengths
# ---------------------------------------------------------------------------

def test_prefix_lcs_lengths_match_full_lcs():
    needle, haystack = "abcab", "xaxbxcxaxbx"
    lengths = prefix_lcs_lengths(needle, haystack)
    assert lengths[0] == 0
    for i in range(1, len(needle) + 1):
        expected = len(longest_common_subsequence(needle[:i], haystack))
        assert lengths[i] == expected


def test_prefix_lcs_empty_cases():
    assert prefix_lcs_lengths("", "abc") == [0]
    assert prefix_lcs_lengths("abc", "") == [0, 0, 0, 0]
    assert prefix_lcs_lengths("abc", "zzz") == [0, 0, 0, 0]


@given(st.text(alphabet="abc", max_size=12), st.text(alphabet="abc", max_size=30))
@settings(max_examples=200)
def test_prefix_lcs_monotone_nondecreasing(needle, haystack):
    lengths = prefix_lcs_lengths(needle, haystack)
    assert all(b - a in (0, 1) for a, b in zip(lengths, lengths[1:]))
    assert lengths[-1] <= min(len(needle), len(haystack))


# ---------------------------------------------------------------------------
# Fingerprint generation
# ---------------------------------------------------------------------------

def test_generate_single_trace(catalog, symbols):
    trace = keys(
        catalog,
        ("rest", "glance", "POST", "/v2/images"),
        ("rest", "nova", "POST", "/v2.1/servers"),
        ("rest", "nova", "GET", "/v2.1/servers/{id}"),
    )
    fingerprint = generate_fingerprint("op", [trace], symbols, catalog)
    assert len(fingerprint) == 3
    assert len(fingerprint.state_change_symbols) == 2


def test_generate_prunes_transients(catalog, symbols):
    common = keys(
        catalog,
        ("rest", "glance", "POST", "/v2/images"),
        ("rest", "nova", "POST", "/v2.1/servers"),
    )
    transient = keys(catalog, ("rest", "nova", "GET", "/v2.1/limits"))
    fingerprint = generate_fingerprint(
        "op", [common, common + transient, transient[:1] + common],
        symbols, catalog,
    )
    assert symbols.decode(fingerprint.symbols) == common


def test_generate_requires_traces(catalog, symbols):
    with pytest.raises(ValueError):
        generate_fingerprint("op", [], symbols, catalog)


def test_paper_regex_form(catalog, symbols):
    trace = keys(
        catalog,
        ("rest", "nova", "GET", "/v2.1/servers"),
        ("rest", "nova", "POST", "/v2.1/servers"),
    )
    fingerprint = generate_fingerprint("op", [trace], symbols, catalog)
    regex = fingerprint.paper_regex()
    get_sym = symbols.symbol(trace[0])
    post_sym = symbols.symbol(trace[1])
    assert regex == f"{get_sym}*{post_sym}"


def test_rest_only_prunes_rpcs(catalog, symbols):
    trace = keys(
        catalog,
        ("rest", "nova", "POST", "/v2.1/servers"),
        ("rpc", "nova", None, "build_and_run_instance"),
        ("rest", "nova", "GET", "/v2.1/servers/{id}"),
    )
    fingerprint = generate_fingerprint("op", [trace], symbols, catalog)
    pruned = fingerprint.rest_only(symbols)
    assert len(fingerprint) == 3
    assert len(pruned) == 2


def test_truncate_at_last_occurrence(catalog, symbols):
    poll = catalog.find_rest("nova", "GET", "/v2.1/servers/{id}").key
    boot = catalog.find_rest("nova", "POST", "/v2.1/servers").key
    delete = catalog.find_rest("nova", "DELETE", "/v2.1/servers/{id}").key
    fingerprint = generate_fingerprint(
        "op", [[boot, poll, delete, poll]], symbols, catalog
    )
    truncated = fingerprint.truncate_at(symbols.symbol(poll))
    assert len(truncated) == 4  # last occurrence is the final element
    truncated2 = fingerprint.truncate_at(symbols.symbol(boot))
    assert len(truncated2) == 1


def test_truncate_missing_symbol_is_identity(catalog, symbols):
    boot = catalog.find_rest("nova", "POST", "/v2.1/servers").key
    fingerprint = generate_fingerprint("op", [[boot]], symbols, catalog)
    assert fingerprint.truncate_at("￿").symbols == fingerprint.symbols


def test_matches_relaxed_allows_gaps(catalog, symbols):
    trace = keys(
        catalog,
        ("rest", "glance", "POST", "/v2/images"),
        ("rest", "nova", "POST", "/v2.1/servers"),
    )
    fingerprint = generate_fingerprint("op", [trace], symbols, catalog)
    a, b = symbols.symbol(trace[0]), symbols.symbol(trace[1])
    assert fingerprint.matches(f"x{a}yy{b}z")
    assert not fingerprint.matches(f"{b}...{a}")  # order violated


def test_serialization_roundtrip(catalog, symbols):
    trace = keys(
        catalog,
        ("rest", "nova", "POST", "/v2.1/servers"),
        ("rpc", "nova", None, "select_destinations"),
    )
    fingerprint = generate_fingerprint(
        "op", [trace], symbols, catalog,
        category="compute", nodes=["ctrl"], dependencies=[("ctrl", "mysql")],
    )
    clone = Fingerprint.from_dict(fingerprint.to_dict())
    assert clone.symbols == fingerprint.symbols
    assert clone.state_change_mask == fingerprint.state_change_mask
    assert clone.category == "compute"
    assert clone.nodes == ("ctrl",)
    assert clone.dependencies == (("ctrl", "mysql"),)


# ---------------------------------------------------------------------------
# Library
# ---------------------------------------------------------------------------

def make_library(catalog, symbols, *ops):
    library = FingerprintLibrary(symbols)
    for name, trace in ops:
        library.add(generate_fingerprint(name, [trace], symbols, catalog))
    return library


def test_library_index(catalog, symbols):
    boot = catalog.find_rest("nova", "POST", "/v2.1/servers").key
    upload = catalog.find_rest("glance", "PUT", "/v2/images/{id}/file").key
    library = make_library(
        catalog, symbols,
        ("op-a", [boot]),
        ("op-b", [boot, upload]),
        ("op-c", [upload]),
    )
    boot_sym = symbols.symbol(boot)
    assert {fp.operation for fp in library.ops_containing(boot_sym)} == {"op-a", "op-b"}
    assert library.fp_max == 2
    assert len(library) == 3
    assert "op-a" in library
    assert library.operations() == ["op-a", "op-b", "op-c"]


def test_ops_containing_order_is_sorted_by_operation_name(
    catalog, symbols
):
    """The postings order is a pinned contract (docs/indexing.md):
    sorted by operation name, independent of insertion order."""
    boot = catalog.find_rest("nova", "POST", "/v2.1/servers").key
    library = make_library(
        catalog, symbols,
        ("op-zulu", [boot]),
        ("op-alpha", [boot]),
        ("op-mike", [boot]),
    )
    names = [
        fp.operation
        for fp in library.ops_containing(symbols.symbol(boot))
    ]
    assert names == ["op-alpha", "op-mike", "op-zulu"]
    # postings() exposes the same canonical order for every symbol.
    assert library.postings()[symbols.symbol(boot)] == tuple(names)


def test_library_version_counts_mutations(catalog, symbols):
    boot = catalog.find_rest("nova", "POST", "/v2.1/servers").key
    library = make_library(catalog, symbols, ("op-a", [boot]))
    before = library.version
    library.add(generate_fingerprint("op-b", [[boot]], symbols, catalog))
    assert library.version == before + 1


def test_library_replacement_updates_index(catalog, symbols):
    boot = catalog.find_rest("nova", "POST", "/v2.1/servers").key
    upload = catalog.find_rest("glance", "PUT", "/v2/images/{id}/file").key
    library = make_library(catalog, symbols, ("op-a", [boot]))
    library.add(generate_fingerprint("op-a", [[upload]], symbols, catalog))
    assert library.ops_containing(symbols.symbol(boot)) == []
    assert len(library.ops_containing(symbols.symbol(upload))) == 1
    # Replacement leaves no stale index entries behind.
    assert library.check_index() == []


def test_library_check_index_reports_corruption(catalog, symbols):
    boot = catalog.find_rest("nova", "POST", "/v2.1/servers").key
    library = make_library(catalog, symbols, ("op-a", [boot]))
    assert library.check_index() == []
    library._containing[symbols.symbol(boot)].add("ghost")
    problems = library.check_index()
    assert len(problems) == 1
    assert "ghost" in problems[0]


def test_library_serialization_roundtrip(catalog, symbols):
    boot = catalog.find_rest("nova", "POST", "/v2.1/servers").key
    library = make_library(catalog, symbols, ("op-a", [boot]))
    clone = FingerprintLibrary.from_dict(library.to_dict(), symbols)
    assert clone.get("op-a").symbols == library.get("op-a").symbols


def test_average_size_per_category(catalog, symbols):
    boot = catalog.find_rest("nova", "POST", "/v2.1/servers").key
    library = FingerprintLibrary(symbols)
    library.add(generate_fingerprint("a", [[boot]], symbols, catalog,
                                     category="compute"))
    library.add(generate_fingerprint("b", [[boot, boot]], symbols, catalog,
                                     category="compute"))
    assert library.average_size("compute") == pytest.approx(1.5)
    assert library.average_size("image") == 0.0
