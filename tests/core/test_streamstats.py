"""Tests for the streaming robust-statistics LS engine."""

import random
from collections import deque

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import GretelConfig
from repro.core.outliers import LevelShiftDetector, _median
from repro.core.streamstats import (
    IncrementalLevelShiftDetector,
    LevelShiftDivergence,
    SortedWindow,
    detector_from_config,
    verify_levelshift,
)


def feed(detector, values, start_ts=0.0):
    alarms = []
    for index, value in enumerate(values):
        shift = detector.update(start_ts + index, value)
        if shift is not None:
            alarms.append(shift)
    return alarms


def steady(n, level=0.010, jitter=0.001, seed=1):
    rng = random.Random(seed)
    return [level + rng.uniform(-jitter, jitter) for _ in range(n)]


# ---------------------------------------------------------------------------
# SortedWindow: parity with deque(maxlen) + sorted()
# ---------------------------------------------------------------------------


def reference_mad(values):
    med = _median(values)
    return _median([abs(v - med) for v in values])


def test_window_validation():
    with pytest.raises(ValueError):
        SortedWindow(0)


def test_window_empty_statistics_raise():
    window = SortedWindow(8)
    with pytest.raises(ValueError):
        window.mad(0.0)
    with pytest.raises(ValueError):
        window.bounds()


def test_window_eviction_matches_deque():
    window = SortedWindow(4)
    mirror = deque(maxlen=4)
    for value in [5.0, 1.0, 3.0, 2.0, 4.0, 0.5]:
        window.append(value)
        mirror.append(value)
        assert list(window) == list(mirror)
    assert window.bounds() == (min(mirror), max(mirror))


def test_window_version_bumps_on_every_mutation():
    window = SortedWindow(4)
    v0 = window.version
    window.append(1.0)
    assert window.version == v0 + 1
    window.clear()
    assert window.version == v0 + 2


def test_window_median_and_mad_small_cases():
    window = SortedWindow(8)
    window.append(3.0)
    assert window.median() == 3.0
    assert window.mad(3.0) == 0.0
    window.append(1.0)
    assert window.median() == 2.0
    assert window.mad(2.0) == reference_mad([3.0, 1.0])


@given(
    st.integers(min_value=1, max_value=25),
    st.lists(
        st.floats(
            min_value=-1e6, max_value=1e6,
            allow_nan=False, allow_infinity=False,
        ),
        min_size=1, max_size=120,
    ),
)
@settings(max_examples=200, deadline=None)
def test_window_statistics_match_reference(maxlen, values):
    """Median, MAD and bounds are bit-identical to the sort-from-
    scratch reference at every step of an arbitrary rolling stream."""
    window = SortedWindow(maxlen)
    mirror = deque(maxlen=maxlen)
    for value in values:
        window.append(value)
        mirror.append(value)
        current = list(mirror)
        assert list(window) == current
        assert window.median() == _median(current)
        assert window.mad(window.median()) == reference_mad(current)
        assert window.bounds() == (min(current), max(current))


def test_window_mad_with_duplicates():
    window = SortedWindow(6)
    for value in [2.0, 2.0, 2.0, 5.0, 5.0, 5.0]:
        window.append(value)
    assert window.mad(window.median()) == reference_mad([2.0] * 3 + [5.0] * 3)


# ---------------------------------------------------------------------------
# IncrementalLevelShiftDetector: reference LS semantics
# ---------------------------------------------------------------------------


def test_incremental_constructor_validation():
    with pytest.raises(ValueError):
        IncrementalLevelShiftDetector(window=2)
    with pytest.raises(ValueError):
        IncrementalLevelShiftDetector(confirm=0)


def test_incremental_detects_level_shift():
    detector = IncrementalLevelShiftDetector()
    series = steady(60) + steady(40, level=0.060, seed=2)
    alarms = feed(detector, series)
    assert len(alarms) == 1
    alarm = alarms[0]
    assert alarm.observed > alarm.baseline
    assert 60 <= alarm.index <= 66


def test_pending_samples_do_not_poison_baseline():
    """A broken confirm streak folds its pending samples back into the
    window in arrival order — exactly as the reference does — so the
    baselines of both detectors stay element-for-element identical."""
    reference = LevelShiftDetector(confirm=3)
    incremental = IncrementalLevelShiftDetector(confirm=3)
    # Two above-threshold spikes, then a normal value: streak breaks.
    series = steady(40) + [0.300, 0.310, 0.010]
    for index, value in enumerate(series):
        assert reference.update(float(index), value) is None
        assert incremental.update(float(index), value) is None
    window = list(incremental._baseline)
    assert list(reference._baseline) == window
    # The broken streak's samples rejoined the window, in order,
    # before the breaking value.
    assert window[-3:] == [0.300, 0.310, 0.010]
    assert reference.threshold() == incremental.threshold()


def test_alarm_once_per_shift_under_cooldown():
    """One sustained shift raises exactly one alarm: the cooldown and
    the post-alarm re-seed suppress the alarm storm."""
    detector = IncrementalLevelShiftDetector(cooldown=10.0)
    series = steady(60) + steady(120, level=0.080, seed=4)
    alarms = feed(detector, series)
    assert len(alarms) == 1


def test_second_shift_alarms_again():
    detector = IncrementalLevelShiftDetector()
    series = (steady(60) + steady(60, level=0.060, seed=5)
              + steady(60, level=0.200, seed=6))
    assert len(feed(detector, series)) == 2


def test_reset_clears_state_and_cache():
    detector = IncrementalLevelShiftDetector()
    feed(detector, steady(60) + steady(20, level=0.100))
    assert detector.alarms
    detector.reset()
    assert detector.alarms == []
    assert detector.baseline == 0.0
    assert feed(detector, steady(50)) == []


def test_threshold_cache_counts_recomputes():
    detector = IncrementalLevelShiftDetector()
    feed(detector, steady(50))
    # The last update appended after its threshold check, so one read
    # re-primes the cache; every read after that is a hit.
    detector.threshold()
    recomputes = detector.threshold_recomputes
    for _ in range(10):
        detector.threshold()
    assert detector.threshold_recomputes == recomputes
    # A mutation invalidates exactly once: the update's own threshold
    # check hits the primed cache, its append invalidates, the next
    # read recomputes, and the read after that hits again.
    detector.update(100.0, 0.010)
    detector.threshold()
    detector.threshold()
    assert detector.threshold_recomputes == recomputes + 1


def test_incremental_threshold_matches_reference_when_underfilled():
    reference = LevelShiftDetector()
    incremental = IncrementalLevelShiftDetector()
    for index, value in enumerate([0.01, 0.02]):
        reference.update(float(index), value)
        incremental.update(float(index), value)
    assert reference.threshold() == incremental.threshold()
    assert reference.spread == incremental.spread == float("inf")


# ---------------------------------------------------------------------------
# Differential oracle
# ---------------------------------------------------------------------------


def shift_series(draw_seed, n=400):
    """A random stream with occasional regime changes."""
    rng = random.Random(draw_seed)
    samples = []
    ts = 0.0
    level = 0.05
    for _ in range(n):
        ts += rng.uniform(0.01, 0.5)
        if rng.random() < 0.02:
            level *= rng.uniform(1.2, 5.0)
        samples.append((ts, level * rng.uniform(0.8, 1.3)))
    return samples


@given(
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=4, max_value=48),
    st.integers(min_value=1, max_value=5),
    st.floats(min_value=0.0, max_value=20.0),
)
@settings(max_examples=60, deadline=None)
def test_incremental_equivalent_to_reference(seed, window, confirm, cooldown):
    """The tentpole property: over random streams *and* random ls_*
    configurations, the incremental detector is bit-identical to the
    reference — every alarm field, every baseline, every threshold."""
    config = GretelConfig(
        ls_window=window,
        ls_confirm=confirm,
        ls_cooldown=cooldown,
        ls_warmup=confirm + 1,
        ls_min_delta=0.001,
    )
    result = verify_levelshift(shift_series(seed), config=config)
    assert result.ok
    assert result.samples == 400


def test_oracle_counts_alarms():
    result = verify_levelshift(shift_series(7))
    assert result.ok
    assert result.alarms >= 1
    assert "EQUIVALENT" in result.summary()


def test_oracle_flags_divergence():
    """Negative test: the oracle must *fail* when handed detectors
    that genuinely disagree (mismatched windows)."""
    samples = shift_series(3)
    detectors = (
        LevelShiftDetector(window=24),
        IncrementalLevelShiftDetector(window=8),
    )
    result = verify_levelshift(
        samples, detectors=detectors, strict=False
    )
    assert not result.ok
    assert "DIVERGED" in result.summary()
    with pytest.raises(LevelShiftDivergence):
        verify_levelshift(
            shift_series(3),
            detectors=(
                LevelShiftDetector(window=24),
                IncrementalLevelShiftDetector(window=8),
            ),
        )


def test_detector_from_config_honors_flag():
    on = GretelConfig(incremental_ls=True)
    off = GretelConfig(incremental_ls=False)
    assert isinstance(
        detector_from_config(on), IncrementalLevelShiftDetector
    )
    assert isinstance(detector_from_config(off), LevelShiftDetector)
    # Explicit override beats the config flag (the oracle's hook).
    assert isinstance(
        detector_from_config(off, incremental=True),
        IncrementalLevelShiftDetector,
    )
    assert isinstance(
        detector_from_config(on, incremental=False), LevelShiftDetector
    )


def test_detector_from_config_wires_ls_knobs():
    config = GretelConfig(
        ls_window=16, ls_sigmas=5.0, ls_min_delta=0.01,
        ls_confirm=2, ls_warmup=8, ls_rel_delta=0.3, ls_cooldown=7.0,
    )
    for incremental in (False, True):
        detector = detector_from_config(config, incremental=incremental)
        assert detector.window == 16
        assert detector.sigmas == 5.0
        assert detector.min_delta == 0.01
        assert detector.confirm == 2
        assert detector.warmup == 8
        assert detector.rel_delta == 0.3
        assert detector.cooldown == 7.0
