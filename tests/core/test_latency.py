"""Tests for per-API latency tracking."""

from collections import Counter

from repro.openstack.apis import ApiKind
from repro.openstack.wire import WireEvent
from repro.core.config import GretelConfig
from repro.core.latency import LatencyTracker
from repro.core.outliers import LevelShiftDetector
from repro.core.streamstats import IncrementalLevelShiftDetector


def make_event(seq, api_key, latency, ts=None, status=200, noise=False):
    ts = ts if ts is not None else seq * 0.1
    return WireEvent(
        seq=seq, api_key=api_key, kind=ApiKind.REST, method="GET",
        name="/x", src_service="a", src_node="n1", src_ip="1",
        dst_service="b", dst_node="n2", dst_ip="2",
        ts_request=ts - latency, ts_response=ts, status=status,
        noise=noise,
    )


def test_separate_series_per_api():
    tracker = LatencyTracker()
    tracker.observe(make_event(1, "api-a", 0.01))
    tracker.observe(make_event(2, "api-b", 0.01))
    assert tracker.series_count() == 2


def test_anomaly_on_level_shift():
    config = GretelConfig(ls_warmup=12, ls_confirm=3, ls_min_delta=0.004)
    tracker = LatencyTracker(config)
    seen = []
    tracker.on_anomaly(seen.append)
    for seq in range(60):
        tracker.observe(make_event(seq, "api-a", 0.010 + (seq % 3) * 0.0005))
    for seq in range(60, 80):
        tracker.observe(make_event(seq, "api-a", 0.080))
    assert len(seen) == 1
    anomaly = seen[0]
    assert anomaly.api_key == "api-a"
    assert anomaly.magnitude > 0.05
    assert tracker.anomalies == seen


def test_no_anomaly_on_steady_series():
    tracker = LatencyTracker()
    for seq in range(200):
        tracker.observe(make_event(seq, "api-a", 0.010 + (seq % 5) * 0.0004))
    assert tracker.anomalies == []


def test_anomaly_carries_triggering_event():
    tracker = LatencyTracker()
    for seq in range(40):
        tracker.observe(make_event(seq, "a", 0.01))
    result = None
    for seq in range(40, 60):
        result = result or tracker.observe(make_event(seq, "a", 0.2))
    assert result is not None
    assert result.event.api_key == "a"


def test_incremental_engine_selected_by_config():
    on = LatencyTracker(GretelConfig(incremental_ls=True))
    off = LatencyTracker(GretelConfig(incremental_ls=False))
    assert isinstance(
        on.detector_for("a"), IncrementalLevelShiftDetector
    )
    assert isinstance(off.detector_for("a"), LevelShiftDetector)


def shift_stream(apis=3, steady=50, shifted=25):
    """Interleaved multi-API stream where every API level-shifts."""
    events = []
    seq = 0
    for step in range(steady + shifted):
        for api in range(apis):
            latency = 0.010 + (step % 3) * 0.0005
            if step >= steady:
                latency = 0.080 + (step % 3) * 0.0005
            events.append(make_event(seq, f"api-{api}", latency))
            seq += 1
    return events


def test_batch_equals_serial_anomalies():
    """The grouped batch path must see exactly the serial gate and the
    serial per-API sample order: same anomaly multiset, same counters,
    with noise and error events excluded by both."""
    events = shift_stream()
    # Interleave gated events that neither path may observe.
    gated = [
        make_event(10_000, "api-0", 5.0, status=500),
        make_event(10_001, "api-1", 5.0, noise=True),
    ]
    stream = events[:30] + gated + events[30:]

    for config in (
        GretelConfig(incremental_ls=True),
        GretelConfig(incremental_ls=False),
    ):
        serial = LatencyTracker(config)
        for event in stream:
            if not event.noise and not event.error:
                serial.observe(event)
        batched = LatencyTracker(config)
        observed = 0
        for start in range(0, len(stream), 17):
            observed += batched.observe_batch(stream[start:start + 17])
        assert observed == len(events)
        assert batched.ls_samples_fed == serial.ls_samples_fed

        def key(anomaly):
            return (
                anomaly.api_key, anomaly.ts,
                anomaly.observed, anomaly.baseline,
            )

        assert Counter(map(key, batched.anomalies)) == \
            Counter(map(key, serial.anomalies))
        assert len(batched.anomalies) == 3


def test_batch_gate_skips_noise_and_errors():
    tracker = LatencyTracker()
    fed = tracker.observe_batch([
        make_event(1, "a", 0.01),
        make_event(2, "a", 0.01, status=404),
        make_event(3, "a", 0.01, noise=True),
        make_event(4, "a", 0.01, status=399),
    ])
    assert fed == 2
    assert tracker.ls_samples_fed == 2


def test_threshold_recompute_counter_aggregates_series():
    config = GretelConfig(incremental_ls=True)
    tracker = LatencyTracker(config)
    tracker.observe_batch(shift_stream(apis=2))
    incremental_recomputes = tracker.ls_threshold_recomputes
    assert 0 < incremental_recomputes

    reference = LatencyTracker(GretelConfig(incremental_ls=False))
    reference.observe_batch(shift_stream(apis=2))
    # The incremental cache recomputes at most once per window
    # mutation; the reference recomputes on every threshold() call.
    assert incremental_recomputes <= reference.ls_threshold_recomputes
