"""Tests for per-API latency tracking."""

from repro.openstack.apis import ApiKind
from repro.openstack.wire import WireEvent
from repro.core.config import GretelConfig
from repro.core.latency import LatencyTracker


def make_event(seq, api_key, latency, ts=None):
    ts = ts if ts is not None else seq * 0.1
    return WireEvent(
        seq=seq, api_key=api_key, kind=ApiKind.REST, method="GET",
        name="/x", src_service="a", src_node="n1", src_ip="1",
        dst_service="b", dst_node="n2", dst_ip="2",
        ts_request=ts - latency, ts_response=ts, status=200,
    )


def test_separate_series_per_api():
    tracker = LatencyTracker()
    tracker.observe(make_event(1, "api-a", 0.01))
    tracker.observe(make_event(2, "api-b", 0.01))
    assert tracker.series_count() == 2


def test_anomaly_on_level_shift():
    config = GretelConfig(ls_warmup=12, ls_confirm=3, ls_min_delta=0.004)
    tracker = LatencyTracker(config)
    seen = []
    tracker.on_anomaly(seen.append)
    for seq in range(60):
        tracker.observe(make_event(seq, "api-a", 0.010 + (seq % 3) * 0.0005))
    for seq in range(60, 80):
        tracker.observe(make_event(seq, "api-a", 0.080))
    assert len(seen) == 1
    anomaly = seen[0]
    assert anomaly.api_key == "api-a"
    assert anomaly.magnitude > 0.05
    assert tracker.anomalies == seen


def test_no_anomaly_on_steady_series():
    tracker = LatencyTracker()
    for seq in range(200):
        tracker.observe(make_event(seq, "api-a", 0.010 + (seq % 5) * 0.0004))
    assert tracker.anomalies == []


def test_anomaly_carries_triggering_event():
    tracker = LatencyTracker()
    for seq in range(40):
        tracker.observe(make_event(seq, "a", 0.01))
    result = None
    for seq in range(40, 60):
        result = result or tracker.observe(make_event(seq, "a", 0.2))
    assert result is not None
    assert result.event.api_key == "a"
