"""Tests for operation detection (Algorithm 2)."""

import pytest

from repro.openstack.apis import ApiKind
from repro.openstack.catalog import default_catalog
from repro.openstack.wire import WireEvent
from repro.core.config import GretelConfig
from repro.core.detector import OperationDetector
from repro.core.fingerprint import FingerprintLibrary, generate_fingerprint
from repro.core.symbols import SymbolTable
from repro.core.window import Snapshot


@pytest.fixture(scope="module")
def catalog():
    return default_catalog()


@pytest.fixture(scope="module")
def symbols(catalog):
    return SymbolTable(catalog)


# A small controlled universe of operations.
BOOT = ("rest", "nova", "POST", "/v2.1/servers")
PORT = ("rest", "neutron", "POST", "/v2.0/ports.json")
IMAGE = ("rest", "glance", "POST", "/v2/images")
UPLOAD = ("rest", "glance", "PUT", "/v2/images/{id}/file")
VOLUME = ("rest", "cinder", "POST", "/v2/{tenant}/volumes")
POLL = ("rest", "nova", "GET", "/v2.1/servers/{id}")
DEL_SRV = ("rest", "nova", "DELETE", "/v2.1/servers/{id}")
KEYPAIR = ("rest", "nova", "POST", "/v2.1/os-keypairs")
RPC_BUILD = ("rpc", "nova", None, "build_and_run_instance")
LIST_IMAGES = ("rest", "glance", "GET", "/v2/images")


def to_keys(catalog, specs):
    keys = []
    for kind, service, method, name in specs:
        if kind == "rest":
            keys.append(catalog.find_rest(service, method, name).key)
        else:
            keys.append(catalog.find_rpc(service, name).key)
    return keys


@pytest.fixture(scope="module")
def library(catalog, symbols):
    library = FingerprintLibrary(symbols)
    operations = {
        "op-boot": [IMAGE, UPLOAD, BOOT, RPC_BUILD, PORT, POLL, DEL_SRV],
        "op-image": [IMAGE, UPLOAD, LIST_IMAGES],
        "op-volume-boot": [VOLUME, IMAGE, UPLOAD, BOOT, RPC_BUILD, PORT, POLL],
        "op-keypair-boot": [KEYPAIR, IMAGE, UPLOAD, BOOT, RPC_BUILD, PORT, POLL],
        "op-reads": [LIST_IMAGES, POLL],
    }
    for name, specs in operations.items():
        library.add(generate_fingerprint(
            name, [to_keys(catalog, specs)], symbols, catalog,
        ))
    return library


def make_detector(library, symbols, catalog, **overrides):
    config = GretelConfig(**overrides)
    return OperationDetector(library, symbols, catalog, config)


def make_snapshot(catalog, specs, fault_spec, fault_status=500):
    keys = to_keys(catalog, specs)
    fault_key = to_keys(catalog, [fault_spec])[0]
    events = []
    fault_event = None
    for index, key in enumerate(keys):
        api = catalog.get(key)
        status = 200
        if key == fault_key and fault_event is None and index == len(keys) - 1:
            status = fault_status
        event = WireEvent(
            seq=index, api_key=key, kind=api.kind, method=api.method,
            name=api.name, src_service="x", src_node="ctrl", src_ip="1",
            dst_service=api.service, dst_node="nova-ctl", dst_ip="2",
            ts_request=index * 0.1, ts_response=index * 0.1 + 0.01,
            status=status,
        )
        events.append(event)
        if status >= 400:
            fault_event = event
    if fault_event is None:
        fault_event = events[-1]
    return Snapshot(fault=fault_event, events=events,
                    fault_index=events.index(fault_event))


def test_detects_single_matching_operation(library, symbols, catalog):
    detector = make_detector(library, symbols, catalog)
    snapshot = make_snapshot(
        catalog, [KEYPAIR, IMAGE, UPLOAD, BOOT, PORT, POLL], POLL,
    )
    result = detector.detect(snapshot)
    assert result.operations == ["op-keypair-boot"]
    assert result.narrowed_to_one
    assert result.theta == 1.0


def test_candidates_are_ops_containing_offending_api(library, symbols, catalog):
    detector = make_detector(library, symbols, catalog)
    snapshot = make_snapshot(catalog, [IMAGE, UPLOAD], UPLOAD)
    result = detector.detect(snapshot)
    # Four fingerprints contain the upload API.
    assert result.candidates == 4


def test_no_candidates_for_unknown_api(library, symbols, catalog):
    detector = make_detector(library, symbols, catalog)
    unknown = ("rest", "swift", "GET", "/info")
    snapshot = make_snapshot(catalog, [unknown], unknown)
    result = detector.detect(snapshot)
    assert result.matched == []
    assert result.candidates == 0


def test_truncation_allows_partial_execution(library, symbols, catalog):
    """A fault at the port step must match boot ops even though their
    later steps (poll/delete) never executed."""
    detector = make_detector(library, symbols, catalog)
    snapshot = make_snapshot(catalog, [VOLUME, IMAGE, UPLOAD, BOOT, PORT], PORT)
    result = detector.detect(snapshot)
    assert "op-volume-boot" in result.operations


def test_ranking_prefers_longest_corroboration(library, symbols, catalog):
    """With a keypair-boot running, the generic image op (a subsequence)
    must be outranked by the longer corroborated fingerprint."""
    detector = make_detector(library, symbols, catalog)
    snapshot = make_snapshot(
        catalog, [KEYPAIR, IMAGE, UPLOAD, BOOT, PORT, POLL], POLL,
    )
    result = detector.detect(snapshot)
    assert result.operations == ["op-keypair-boot"]
    assert "op-reads" not in result.operations


def test_relaxed_match_tolerates_interleaving(library, symbols, catalog):
    """Foreign messages between the operation's own must not break it."""
    detector = make_detector(library, symbols, catalog)
    snapshot = make_snapshot(
        catalog,
        [KEYPAIR, LIST_IMAGES, IMAGE, VOLUME, UPLOAD, LIST_IMAGES, BOOT,
         PORT, POLL],
        POLL,
    )
    result = detector.detect(snapshot)
    assert "op-keypair-boot" in result.operations


def test_performance_fault_uses_full_fingerprint(library, symbols, catalog):
    detector = make_detector(library, symbols, catalog)
    snapshot = make_snapshot(
        catalog, [IMAGE, UPLOAD, BOOT, PORT, POLL, DEL_SRV], PORT,
        fault_status=200,
    )
    result = detector.detect(snapshot, performance_fault=True)
    assert "op-boot" in result.operations


def test_rpc_pruning_flag(library, symbols, catalog):
    """With pruning off, RPC symbols participate in matching."""
    with_pruning = make_detector(library, symbols, catalog, prune_rpcs=True)
    without = make_detector(library, symbols, catalog, prune_rpcs=False)
    specs = [KEYPAIR, IMAGE, UPLOAD, BOOT, RPC_BUILD, PORT, POLL]
    snapshot = make_snapshot(catalog, specs, POLL)
    assert "op-keypair-boot" in with_pruning.detect(snapshot).operations
    assert "op-keypair-boot" in without.detect(snapshot).operations


def test_rpc_fault_falls_back_to_unpruned(library, symbols, catalog):
    """A fault on an RPC API must still find candidates under pruning."""
    detector = make_detector(library, symbols, catalog, prune_rpcs=True)
    snapshot = make_snapshot(
        catalog, [KEYPAIR, IMAGE, UPLOAD, BOOT, RPC_BUILD], RPC_BUILD,
    )
    result = detector.detect(snapshot)
    assert result.candidates == 3  # the three boot variants


def test_candidate_cache_reused(library, symbols, catalog):
    detector = make_detector(library, symbols, catalog)
    first = detector.candidates_for("rest:nova:GET:/v2.1/servers/{id}")
    second = detector.candidates_for("rest:nova:GET:/v2.1/servers/{id}")
    assert first is second


def test_matched_events_filtered_to_operations(library, symbols, catalog):
    detector = make_detector(library, symbols, catalog)
    snapshot = make_snapshot(
        catalog, [KEYPAIR, IMAGE, VOLUME, UPLOAD, BOOT, PORT, POLL], POLL,
    )
    result = detector.detect(snapshot)
    assert result.matched_events
    volume_key = to_keys(catalog, [VOLUME])[0]
    matched_keys = {event.api_key for event in result.matched_events}
    assert volume_key not in matched_keys  # not part of the matched op


def test_coverage_reported(library, symbols, catalog):
    detector = make_detector(library, symbols, catalog)
    snapshot = make_snapshot(
        catalog, [KEYPAIR, IMAGE, UPLOAD, BOOT, PORT, POLL], POLL,
    )
    result = detector.detect(snapshot)
    assert result.coverages["op-keypair-boot"] == pytest.approx(1.0)


def test_adaptive_context_disabled_matches_whole_snapshot(
        library, symbols, catalog):
    detector = make_detector(library, symbols, catalog, adaptive_context=False)
    snapshot = make_snapshot(
        catalog, [KEYPAIR, IMAGE, UPLOAD, BOOT, PORT, POLL], POLL,
    )
    result = detector.detect(snapshot)
    assert result.iterations == 1
    assert "op-keypair-boot" in result.operations
