"""Tests for the level-shift (LS) outlier detector."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.outliers import LevelShiftDetector


def feed(detector, values, start_ts=0.0):
    alarms = []
    for index, value in enumerate(values):
        shift = detector.update(start_ts + index, value)
        if shift is not None:
            alarms.append(shift)
    return alarms


def steady(n, level=0.010, jitter=0.001, seed=1):
    rng = random.Random(seed)
    return [level + rng.uniform(-jitter, jitter) for _ in range(n)]


def test_no_alarm_on_steady_series():
    detector = LevelShiftDetector()
    assert feed(detector, steady(300)) == []


def test_detects_level_shift():
    detector = LevelShiftDetector()
    series = steady(60) + steady(40, level=0.060, seed=2)
    alarms = feed(detector, series)
    assert len(alarms) == 1
    alarm = alarms[0]
    assert alarm.observed > alarm.baseline
    assert alarm.magnitude == pytest.approx(0.050, abs=0.01)
    assert 60 <= alarm.index <= 66


def test_isolated_spike_does_not_alarm():
    detector = LevelShiftDetector(confirm=3)
    series = steady(50) + [0.500] + steady(50, seed=3)
    assert feed(detector, series) == []


def test_adapts_after_shift_no_realarm():
    detector = LevelShiftDetector()
    series = steady(60) + steady(100, level=0.060, seed=4)
    alarms = feed(detector, series)
    assert len(alarms) == 1  # the new level becomes the baseline


def test_second_shift_alarms_again():
    detector = LevelShiftDetector()
    series = (steady(60) + steady(60, level=0.060, seed=5)
              + steady(60, level=0.200, seed=6))
    alarms = feed(detector, series)
    assert len(alarms) == 2


def test_small_variation_below_min_delta_ignored():
    detector = LevelShiftDetector(min_delta=0.050)
    series = steady(60) + steady(60, level=0.020, seed=7)
    assert feed(detector, series) == []


def test_warmup_suppresses_early_alarms():
    detector = LevelShiftDetector(warmup=20)
    series = [0.010] * 5 + [0.500] * 4
    assert feed(detector, series) == []


def test_reset_clears_state():
    detector = LevelShiftDetector()
    feed(detector, steady(60) + steady(20, level=0.100))
    assert detector.alarms
    detector.reset()
    assert detector.alarms == []
    assert feed(detector, steady(50)) == []


def test_constructor_validation():
    with pytest.raises(ValueError):
        LevelShiftDetector(window=2)
    with pytest.raises(ValueError):
        LevelShiftDetector(confirm=0)


def test_threshold_above_baseline():
    detector = LevelShiftDetector()
    feed(detector, steady(50))
    assert detector.threshold() > detector.baseline


@given(st.floats(min_value=0.001, max_value=0.1),
       st.floats(min_value=3.0, max_value=20.0))
@settings(max_examples=30, deadline=None)
def test_large_shift_always_detected(level, factor):
    detector = LevelShiftDetector(min_delta=0.0001)
    series = steady(60, level=level, jitter=level * 0.05)
    series += steady(30, level=level * factor, jitter=level * 0.05, seed=9)
    alarms = feed(detector, series)
    assert len(alarms) >= 1


# ---------------------------------------------------------------------------
# StaticThresholdDetector (the pluggability contrast)
# ---------------------------------------------------------------------------

from repro.core.outliers import StaticThresholdDetector


def test_static_detects_crossing():
    detector = StaticThresholdDetector(threshold=0.05)
    alarms = feed(detector, steady(30) + steady(30, level=0.08, seed=11))
    assert len(alarms) >= 1


def test_static_misses_shift_below_threshold():
    detector = StaticThresholdDetector(threshold=0.5)
    alarms = feed(detector, steady(30) + steady(30, level=0.3, seed=12))
    assert alarms == []


def test_static_never_adapts_and_alarm_storms():
    """The LS selling point (§6): once organic load crosses a static
    threshold, the naive detector alarms forever; LS adapts once."""
    series = steady(30) + steady(300, level=0.08, jitter=0.002, seed=13)
    static = StaticThresholdDetector(threshold=0.05)
    static_alarms = feed(static, series)
    adaptive = LevelShiftDetector(min_delta=0.001)
    adaptive_alarms = feed(adaptive, series)
    assert len(static_alarms) > 10 * max(1, len(adaptive_alarms))


def test_static_validation():
    import pytest as _pytest

    with _pytest.raises(ValueError):
        StaticThresholdDetector(threshold=0.0)
    with _pytest.raises(ValueError):
        StaticThresholdDetector(threshold=1.0, confirm=0)


def test_static_reset():
    detector = StaticThresholdDetector(threshold=0.01, confirm=1)
    feed(detector, [0.5, 0.5])
    assert detector.alarms
    detector.reset()
    assert detector.alarms == []


def test_static_alarm_index_is_sample_index():
    """Regression: ``LevelShift.index`` is documented as "sample index
    at confirmation" — the static detector used to store the *alarm
    count* instead."""
    detector = StaticThresholdDetector(threshold=0.05, confirm=2)
    series = [0.01, 0.01, 0.08, 0.09, 0.01, 0.08, 0.09]
    alarms = feed(detector, series)
    assert [alarm.index for alarm in alarms] == [4, 7]


def test_static_streak_identity_stable_across_alarms():
    """The streak buffer is cleared in place (not rebound), so the
    detector keeps alarming on every confirmed crossing."""
    detector = StaticThresholdDetector(threshold=0.05, confirm=2)
    streak = detector._streak
    feed(detector, [0.08, 0.09, 0.01, 0.08, 0.09, 0.08, 0.09])
    assert detector._streak is streak
    assert len(detector.alarms) == 3
    detector.reset()
    assert detector._streak is streak


def test_reference_counts_threshold_recomputes():
    detector = LevelShiftDetector()
    feed(detector, steady(50))
    before = detector.threshold_recomputes
    assert before > 0
    detector.threshold()
    detector.threshold()
    # The reference recomputes on *every* call — the contrast the
    # streamstats cache counter is measured against.
    assert detector.threshold_recomputes == before + 2
