"""Tests for the offline characterization pipeline (§7.1)."""

import os

import pytest

from repro.openstack.catalog import default_catalog
from repro.core.characterize import characterize_suite
from repro.core.fingerprint import filter_noise
from repro.core.symbols import SymbolTable
from repro.workloads.tempest import TempestSuite


@pytest.fixture(scope="module")
def tiny_suite(request):
    from repro.workloads.tempest import build_suite

    suite = build_suite()
    seen = set()
    tests = []
    for test in suite.tests:
        key = test.template.name
        if key not in seen and len(tests) < 12:
            seen.add(key)
            tests.append(test)
    return TempestSuite(tests=tests)


@pytest.fixture(scope="module")
def result(tiny_suite):
    return characterize_suite(tiny_suite, iterations=2)


def test_one_fingerprint_per_test(tiny_suite, result):
    assert len(result.library) == len(tiny_suite)
    assert result.failed_tests == []


def test_fingerprints_are_noise_free(result):
    catalog = default_catalog()
    symbols = result.library.symbols
    for fingerprint in result.library:
        keys = symbols.decode(fingerprint.symbols)
        assert filter_noise(keys, catalog) == keys


def test_fingerprints_record_nodes(result):
    for fingerprint in result.library:
        assert fingerprint.nodes
        assert all(isinstance(node, str) for node in fingerprint.nodes)


def test_fingerprints_record_dependencies(result):
    for fingerprint in result.library:
        assert fingerprint.dependencies
        nodes = set(fingerprint.nodes)
        assert all(node in nodes for node, _ in fingerprint.dependencies)


def test_category_stats_populated(result, tiny_suite):
    total = sum(stats.tests for stats in result.stats.values())
    assert total == len(tiny_suite)
    for stats in result.stats.values():
        assert stats.rest_events > 0


def test_characterization_is_deterministic(tiny_suite):
    a = characterize_suite(tiny_suite, iterations=2, seed=5)
    b = characterize_suite(tiny_suite, iterations=2, seed=5)
    for op in a.library.operations():
        assert a.library.get(op).symbols == b.library.get(op).symbols


def test_cache_roundtrip(tiny_suite, tmp_path):
    path = str(tmp_path / "char.json")
    first = characterize_suite(tiny_suite, iterations=2, cache_path=path)
    assert os.path.exists(path)
    second = characterize_suite(tiny_suite, iterations=2, cache_path=path)
    assert len(second.library) == len(first.library)
    for op in first.library.operations():
        assert second.library.get(op).symbols == first.library.get(op).symbols
    rows_first = {r["category"]: r for r in first.table1_rows()}
    rows_second = {r["category"]: r for r in second.table1_rows()}
    assert rows_first == rows_second


def test_table1_rows_structure(result):
    rows = result.table1_rows()
    assert rows[-1]["category"] == "total"
    categories = [row["category"] for row in rows[:-1]]
    assert set(categories) <= {"compute", "image", "network", "storage", "misc"}


def test_fp_max_positive(result):
    assert result.fp_max > 5


def test_composite_operations_subsume_simpler_ones(result):
    """§4: composite administrative tasks subsume simpler operations —
    some fingerprint's state-change sequence is a subsequence of a
    larger one's (the paper's S2 ⊂ S1 example)."""
    fingerprints = [fp for fp in result.library
                    if len(fp.state_change_symbols) >= 2]

    def is_subsequence(small, big):
        position = 0
        for symbol in small:
            position = big.find(symbol, position)
            if position < 0:
                return False
            position += 1
        return True

    pairs = [
        (a.operation, b.operation)
        for a in fingerprints for b in fingerprints
        if a is not b
        and len(a.state_change_symbols) < len(b.state_change_symbols)
        and is_subsequence(a.state_change_symbols, b.state_change_symbols)
    ]
    assert pairs, "expected at least one subsumed operation pair"
