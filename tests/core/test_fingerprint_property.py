"""Property tests for the fingerprint matching primitives.

Three families of guarantees:

* ``longest_common_subsequence`` returns a *common subsequence* and a
  *longest* one (cross-checked against brute-force enumeration on
  short inputs);
* ``prefix_lcs_lengths`` (the Hyyrö bit-parallel row used by the
  relaxed matcher) agrees with the DP LCS at every prefix and obeys
  the LCS monotonicity laws;
* ``Fingerprint.matches`` is differentially tested against a plain
  ``re`` reference built by *parsing Algorithm 1's literal output*
  (``paper_regex()``: reads starred, writes literal), including on
  truncated fingerprints.
"""

import itertools
import re

from hypothesis import given, settings, strategies as st

from repro.core.fingerprint import (
    Fingerprint,
    longest_common_subsequence,
    prefix_lcs_lengths,
)

# Single-character symbols, as the SymbolTable allocates; a few extras
# act as snapshot noise outside any fingerprint's alphabet.
SYMBOLS = "abcdefg"
NOISE = "xyz"

symbol_seqs = st.text(alphabet=SYMBOLS, max_size=14)
short_seqs = st.text(alphabet=SYMBOLS, max_size=7)


def is_subsequence(needle, haystack):
    it = iter(haystack)
    return all(symbol in it for symbol in needle)


# ---------------------------------------------------------------------------
# longest_common_subsequence
# ---------------------------------------------------------------------------

@given(a=symbol_seqs, b=symbol_seqs)
@settings(max_examples=200, deadline=None)
def test_lcs_is_common_subsequence(a, b):
    lcs = longest_common_subsequence(list(a), list(b))
    assert is_subsequence(lcs, a)
    assert is_subsequence(lcs, b)


@given(a=short_seqs, b=short_seqs)
@settings(max_examples=150, deadline=None)
def test_lcs_length_is_maximal(a, b):
    """No common subsequence is longer than the LCS (brute force)."""
    lcs = longest_common_subsequence(list(a), list(b))
    best = 0
    for size in range(len(a), -1, -1):
        for candidate in itertools.combinations(a, size):
            if is_subsequence(candidate, b):
                best = size
                break
        if best:
            break
    assert len(lcs) == best


@given(a=symbol_seqs, b=symbol_seqs)
@settings(max_examples=100, deadline=None)
def test_lcs_is_symmetric_in_length(a, b):
    forward = longest_common_subsequence(list(a), list(b))
    backward = longest_common_subsequence(list(b), list(a))
    assert len(forward) == len(backward)


# ---------------------------------------------------------------------------
# prefix_lcs_lengths (Hyyrö bit-parallel row)
# ---------------------------------------------------------------------------

@given(needle=symbol_seqs, haystack=symbol_seqs)
@settings(max_examples=200, deadline=None)
def test_prefix_lcs_agrees_with_dp(needle, haystack):
    """Entry i equals the DP LCS of needle[:i] against the haystack."""
    lengths = prefix_lcs_lengths(needle, haystack)
    assert len(lengths) == len(needle) + 1
    for i in range(len(needle) + 1):
        expected = len(longest_common_subsequence(list(needle[:i]),
                                                  list(haystack)))
        assert lengths[i] == expected


@given(needle=symbol_seqs, haystack=symbol_seqs)
@settings(max_examples=200, deadline=None)
def test_prefix_lcs_monotone(needle, haystack):
    """Prefix LCS is non-decreasing, grows by ≤1, and is ≤ both sides."""
    lengths = prefix_lcs_lengths(needle, haystack)
    assert lengths[0] == 0
    for i in range(1, len(lengths)):
        assert lengths[i - 1] <= lengths[i] <= lengths[i - 1] + 1
        assert lengths[i] <= i
        assert lengths[i] <= len(haystack)


@given(needle=symbol_seqs)
@settings(max_examples=50, deadline=None)
def test_prefix_lcs_against_itself(needle):
    """A needle matched against itself corroborates every prefix fully."""
    lengths = prefix_lcs_lengths(needle, needle)
    assert lengths == list(range(len(needle) + 1))


# ---------------------------------------------------------------------------
# Fingerprint.matches vs a reference regex parsed from paper_regex()
# ---------------------------------------------------------------------------

@st.composite
def fingerprints(draw):
    symbols = draw(st.text(alphabet=SYMBOLS, min_size=1, max_size=10))
    mask = tuple(draw(st.lists(st.booleans(), min_size=len(symbols),
                               max_size=len(symbols))))
    return Fingerprint(operation="op", symbols=symbols,
                       state_change_mask=mask)


snapshots = st.text(alphabet=SYMBOLS + NOISE, max_size=40)


def reference_matches(fingerprint, snapshot, relaxed):
    """Independent matcher built from Algorithm 1's regex string.

    ``paper_regex()`` stars read symbols and leaves state changes
    literal; the relaxed match (§5.3.2) requires the state-change
    literals as an ordered subsequence, the strict match requires
    every symbol.  A fingerprint with no required literals never
    matches (the analyzer falls back to coverage ranking instead).
    """
    parsed = []  # (symbol, is_state_change)
    pattern = fingerprint.paper_regex()
    index = 0
    while index < len(pattern):
        symbol = pattern[index]
        starred = index + 1 < len(pattern) and pattern[index + 1] == "*"
        parsed.append((symbol, not starred))
        index += 2 if starred else 1
    literals = [s for s, required in parsed if required or not relaxed]
    if not literals:
        return False
    reference = re.compile(".*?".join(re.escape(s) for s in literals),
                           re.DOTALL)
    return reference.search(snapshot) is not None


@given(fingerprint=fingerprints(), snapshot=snapshots,
       relaxed=st.booleans())
@settings(max_examples=300, deadline=None)
def test_matches_agrees_with_paper_regex(fingerprint, snapshot, relaxed):
    assert fingerprint.matches(snapshot, relaxed=relaxed) == \
        reference_matches(fingerprint, snapshot, relaxed)


@given(fingerprint=fingerprints(), relaxed=st.booleans(),
       data=st.data())
@settings(max_examples=200, deadline=None)
def test_matches_on_embedded_fingerprint(fingerprint, relaxed, data):
    """A snapshot containing the full symbol sequence in order (with
    noise interleaved) always matches — unless there is nothing
    required to match."""
    noise = data.draw(st.lists(st.text(alphabet=NOISE, max_size=3),
                               min_size=len(fingerprint.symbols) + 1,
                               max_size=len(fingerprint.symbols) + 1))
    snapshot = noise[0] + "".join(
        symbol + gap for symbol, gap in zip(fingerprint.symbols, noise[1:])
    )
    literals = (fingerprint.state_change_symbols if relaxed
                else fingerprint.symbols)
    assert fingerprint.matches(snapshot, relaxed=relaxed) == bool(literals)
    assert reference_matches(fingerprint, snapshot, relaxed) == bool(literals)


@given(fingerprint=fingerprints(), snapshot=snapshots,
       relaxed=st.booleans(), data=st.data())
@settings(max_examples=200, deadline=None)
def test_truncated_matches_agree_with_paper_regex(fingerprint, snapshot,
                                                  relaxed, data):
    """Algorithm 2 truncates at the fault symbol before matching; the
    differential property must survive truncation."""
    cut = data.draw(st.sampled_from(sorted(set(fingerprint.symbols + NOISE))))
    truncated = fingerprint.truncate_at(cut)
    assert truncated.symbols == fingerprint.symbols[
        : fingerprint.symbols.rfind(cut) + 1] or cut not in fingerprint.symbols
    assert truncated.matches(snapshot, relaxed=relaxed) == \
        reference_matches(truncated, snapshot, relaxed)


@given(fingerprint=fingerprints())
@settings(max_examples=100, deadline=None)
def test_pure_read_fingerprint_never_relaxed_matches(fingerprint):
    """Relaxed matching has no required literal in a read-only
    fingerprint, so even its own symbol string is not a match."""
    reads_only = Fingerprint(
        operation=fingerprint.operation,
        symbols=fingerprint.symbols,
        state_change_mask=tuple(False for _ in fingerprint.symbols),
    )
    assert not reads_only.matches(reads_only.symbols, relaxed=True)
    assert not reference_matches(reads_only, reads_only.symbols, True)
    # Strict matching still works: every symbol is its own literal.
    assert reads_only.matches(reads_only.symbols, relaxed=False)
