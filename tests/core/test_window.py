"""Tests for the dual-buffer sliding window and snapshots."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.openstack.apis import ApiKind
from repro.openstack.wire import WireEvent
from repro.core.window import SlidingWindow, Snapshot


def make_event(seq, status=200):
    return WireEvent(
        seq=seq, api_key="rest:nova:GET:/v2.1/servers", kind=ApiKind.REST,
        method="GET", name="/v2.1/servers",
        src_service="horizon", src_node="ctrl", src_ip="1",
        dst_service="nova", dst_node="nova-ctl", dst_ip="2",
        ts_request=seq * 1.0, ts_response=seq * 1.0 + 0.01, status=status,
    )


def test_window_capacity_bounded():
    window = SlidingWindow(alpha=10)
    for seq in range(100):
        window.append(make_event(seq))
    assert len(window) == 10


def test_alpha_validation():
    with pytest.raises(ValueError):
        SlidingWindow(alpha=1)


def test_snapshot_freezes_after_half_alpha():
    window = SlidingWindow(alpha=10)
    for seq in range(7):
        window.append(make_event(seq))
    fault = make_event(7, status=500)
    window.append(fault)
    window.mark_fault(fault)
    completed = []
    for seq in range(8, 20):
        completed.extend(window.append(make_event(seq)))
        if completed:
            break
    assert len(completed) == 1
    snapshot = completed[0]
    # Snapshot completed after alpha/2 = 5 post-fault events.
    assert snapshot.events[-1].seq == 12
    assert snapshot.fault.seq == 7
    assert snapshot.events[snapshot.fault_index].seq == 7


def test_snapshot_has_past_and_future():
    window = SlidingWindow(alpha=8)
    for seq in range(6):
        window.append(make_event(seq))
    fault = make_event(6, status=500)
    window.append(fault)
    window.mark_fault(fault)
    completed = []
    seq = 7
    while not completed:
        completed = window.append(make_event(seq))
        seq += 1
    snapshot = completed[0]
    seqs = [e.seq for e in snapshot.events]
    assert min(seqs) < 6 < max(seqs)


def test_multiple_overlapping_faults():
    window = SlidingWindow(alpha=10)
    fault_a = make_event(0, status=500)
    window.append(fault_a)
    window.mark_fault(fault_a)
    fault_b = make_event(1, status=500)
    window.append(fault_b)
    window.mark_fault(fault_b)
    completed = []
    for seq in range(2, 20):
        completed.extend(window.append(make_event(seq)))
    assert len(completed) == 2
    assert {s.fault.seq for s in completed} == {0, 1}


def test_flush_freezes_pending():
    window = SlidingWindow(alpha=10)
    fault = make_event(0, status=500)
    window.append(fault)
    window.mark_fault(fault)
    assert window.pending_snapshots == 1
    snapshots = window.flush()
    assert len(snapshots) == 1
    assert window.pending_snapshots == 0


def test_on_snapshot_callback():
    seen = []
    window = SlidingWindow(alpha=6, on_snapshot=seen.append)
    fault = make_event(0, status=500)
    window.append(fault)
    window.mark_fault(fault)
    for seq in range(1, 10):
        window.append(make_event(seq))
    assert len(seen) == 1
    assert isinstance(seen[0], Snapshot)


def test_fault_scrolled_out_still_anchored():
    window = SlidingWindow(alpha=4)
    fault = make_event(0, status=500)
    window.append(fault)
    window.mark_fault(fault)
    # Push so many events that the fault leaves the deque before the
    # freeze ever happens (freeze occurs at alpha/2 = 2, so force it by
    # flushing after overflow instead).
    for seq in range(1, 10):
        window.append(make_event(seq))
    snapshots = window.flush()
    assert snapshots == []  # completed earlier through append
    assert window.snapshots_taken == 1


def test_snapshot_window_radius():
    events = [make_event(seq) for seq in range(11)]
    snapshot = Snapshot(fault=events[5], events=events, fault_index=5)
    assert [e.seq for e in snapshot.window(2)] == [3, 4, 5, 6, 7]
    assert snapshot.window(100) == events
    assert not snapshot.covers_all(2)
    assert snapshot.covers_all(5)


@given(st.integers(min_value=2, max_value=64), st.integers(min_value=0, max_value=200))
@settings(max_examples=50, deadline=None)
def test_window_never_exceeds_alpha(alpha, n_events):
    window = SlidingWindow(alpha=alpha)
    for seq in range(n_events):
        window.append(make_event(seq))
        assert len(window) <= alpha


def test_overlapping_faults_each_get_correct_fault_index():
    """Two faults inside the same α/2 horizon: each completed snapshot
    must anchor ``fault_index`` on *its own* fault event, not on the
    other pending fault (regression for the shared-deque freeze)."""
    window = SlidingWindow(alpha=12)
    for seq in range(4):
        window.append(make_event(seq))
    fault_a = make_event(4, status=500)
    window.append(fault_a)
    window.mark_fault(fault_a)
    # Second fault lands 3 events later — well within alpha/2 = 6.
    for seq in range(5, 8):
        window.append(make_event(seq))
    fault_b = make_event(8, status=503)
    window.append(fault_b)
    window.mark_fault(fault_b)

    completed = []
    for seq in range(9, 30):
        completed.extend(window.append(make_event(seq)))
    assert [s.fault.seq for s in completed] == [4, 8]
    for snapshot in completed:
        anchored = snapshot.events[snapshot.fault_index]
        assert anchored.seq == snapshot.fault.seq
        assert anchored.status == snapshot.fault.status
        # Full future context: alpha/2 events beyond the fault.
        assert snapshot.events[-1].seq == snapshot.fault.seq + 6


def test_flush_completes_with_partial_future_context():
    """flush() freezes pending snapshots early: fewer than α/2 events
    of post-fault context, but the fault stays correctly anchored."""
    window = SlidingWindow(alpha=12)
    for seq in range(5):
        window.append(make_event(seq))
    fault = make_event(5, status=500)
    window.append(fault)
    window.mark_fault(fault)
    # Only 2 of the 6 future events arrive before shutdown.
    window.append(make_event(6))
    window.append(make_event(7))

    snapshots = window.flush()
    assert len(snapshots) == 1
    snapshot = snapshots[0]
    assert snapshot.fault.seq == 5
    assert snapshot.events[snapshot.fault_index].seq == 5
    # Partial post-fault context: present, but short of alpha/2.
    future = [e for e in snapshot.events if e.seq > 5]
    assert len(future) == 2
    assert window.pending_snapshots == 0


@given(
    alpha=st.integers(min_value=2, max_value=32),
    chunks=st.lists(st.integers(min_value=0, max_value=40),
                    min_size=1, max_size=6),
    fault_at=st.integers(min_value=0, max_value=60),
)
@settings(max_examples=100, deadline=None)
def test_append_batch_equals_append(alpha, chunks, fault_at):
    """Chunked ingestion is observationally identical to the serial
    one-event loop: same snapshots, same anchors, same window state."""
    total = sum(chunks)
    events = [make_event(seq, status=500 if seq == fault_at else 200)
              for seq in range(total)]

    serial = SlidingWindow(alpha=alpha)
    serial_completed = []
    for event in events:
        serial_completed.extend(serial.append(event))
        if event.status == 500:
            serial.mark_fault(event)

    batched = SlidingWindow(alpha=alpha)
    batched_completed = []
    cursor = 0
    for size in chunks:
        chunk = events[cursor:cursor + size]
        cursor += size
        # Faults are marked per-chunk, as AnalyzerShard.ingest_batch
        # does: append up to (and including) the fault, mark, continue.
        start = 0
        for offset, event in enumerate(chunk):
            if event.status == 500:
                batched_completed.extend(
                    batched.append_batch(chunk[start:offset + 1]))
                batched.mark_fault(event)
                start = offset + 1
        batched_completed.extend(batched.append_batch(chunk[start:]))

    assert [e.seq for e in batched._events] == [e.seq for e in serial._events]
    assert batched.appended == serial.appended
    assert len(batched_completed) == len(serial_completed)
    for ours, theirs in zip(batched_completed, serial_completed):
        assert [e.seq for e in ours.events] == [e.seq for e in theirs.events]
        assert ours.fault.seq == theirs.fault.seq
        assert ours.fault_index == theirs.fault_index
    serial_flushed = serial.flush()
    batched_flushed = batched.flush()
    assert len(batched_flushed) == len(serial_flushed)
    for ours, theirs in zip(batched_flushed, serial_flushed):
        assert ours.fault.seq == theirs.fault.seq
        assert ours.fault_index == theirs.fault_index


def test_live_events_is_a_public_snapshot_of_the_window():
    window = SlidingWindow(alpha=4)
    assert window.live_events() == []
    events = [make_event(seq) for seq in range(6)]
    for event in events:
        window.append(event)
    live = window.live_events()
    # Oldest-first view of the last alpha events.
    assert [e.seq for e in live] == [2, 3, 4, 5]
    # A copy, not the deque itself: mutating it leaves the window alone.
    live.pop()
    assert [e.seq for e in window.live_events()] == [2, 3, 4, 5]
