"""Tests for the dual-buffer sliding window and snapshots."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.openstack.apis import ApiKind
from repro.openstack.wire import WireEvent
from repro.core.window import SlidingWindow, Snapshot


def make_event(seq, status=200):
    return WireEvent(
        seq=seq, api_key="rest:nova:GET:/v2.1/servers", kind=ApiKind.REST,
        method="GET", name="/v2.1/servers",
        src_service="horizon", src_node="ctrl", src_ip="1",
        dst_service="nova", dst_node="nova-ctl", dst_ip="2",
        ts_request=seq * 1.0, ts_response=seq * 1.0 + 0.01, status=status,
    )


def test_window_capacity_bounded():
    window = SlidingWindow(alpha=10)
    for seq in range(100):
        window.append(make_event(seq))
    assert len(window) == 10


def test_alpha_validation():
    with pytest.raises(ValueError):
        SlidingWindow(alpha=1)


def test_snapshot_freezes_after_half_alpha():
    window = SlidingWindow(alpha=10)
    for seq in range(7):
        window.append(make_event(seq))
    fault = make_event(7, status=500)
    window.append(fault)
    window.mark_fault(fault)
    completed = []
    for seq in range(8, 20):
        completed.extend(window.append(make_event(seq)))
        if completed:
            break
    assert len(completed) == 1
    snapshot = completed[0]
    # Snapshot completed after alpha/2 = 5 post-fault events.
    assert snapshot.events[-1].seq == 12
    assert snapshot.fault.seq == 7
    assert snapshot.events[snapshot.fault_index].seq == 7


def test_snapshot_has_past_and_future():
    window = SlidingWindow(alpha=8)
    for seq in range(6):
        window.append(make_event(seq))
    fault = make_event(6, status=500)
    window.append(fault)
    window.mark_fault(fault)
    completed = []
    seq = 7
    while not completed:
        completed = window.append(make_event(seq))
        seq += 1
    snapshot = completed[0]
    seqs = [e.seq for e in snapshot.events]
    assert min(seqs) < 6 < max(seqs)


def test_multiple_overlapping_faults():
    window = SlidingWindow(alpha=10)
    fault_a = make_event(0, status=500)
    window.append(fault_a)
    window.mark_fault(fault_a)
    fault_b = make_event(1, status=500)
    window.append(fault_b)
    window.mark_fault(fault_b)
    completed = []
    for seq in range(2, 20):
        completed.extend(window.append(make_event(seq)))
    assert len(completed) == 2
    assert {s.fault.seq for s in completed} == {0, 1}


def test_flush_freezes_pending():
    window = SlidingWindow(alpha=10)
    fault = make_event(0, status=500)
    window.append(fault)
    window.mark_fault(fault)
    assert window.pending_snapshots == 1
    snapshots = window.flush()
    assert len(snapshots) == 1
    assert window.pending_snapshots == 0


def test_on_snapshot_callback():
    seen = []
    window = SlidingWindow(alpha=6, on_snapshot=seen.append)
    fault = make_event(0, status=500)
    window.append(fault)
    window.mark_fault(fault)
    for seq in range(1, 10):
        window.append(make_event(seq))
    assert len(seen) == 1
    assert isinstance(seen[0], Snapshot)


def test_fault_scrolled_out_still_anchored():
    window = SlidingWindow(alpha=4)
    fault = make_event(0, status=500)
    window.append(fault)
    window.mark_fault(fault)
    # Push so many events that the fault leaves the deque before the
    # freeze ever happens (freeze occurs at alpha/2 = 2, so force it by
    # flushing after overflow instead).
    for seq in range(1, 10):
        window.append(make_event(seq))
    snapshots = window.flush()
    assert snapshots == []  # completed earlier through append
    assert window.snapshots_taken == 1


def test_snapshot_window_radius():
    events = [make_event(seq) for seq in range(11)]
    snapshot = Snapshot(fault=events[5], events=events, fault_index=5)
    assert [e.seq for e in snapshot.window(2)] == [3, 4, 5, 6, 7]
    assert snapshot.window(100) == events
    assert not snapshot.covers_all(2)
    assert snapshot.covers_all(5)


@given(st.integers(min_value=2, max_value=64), st.integers(min_value=0, max_value=200))
@settings(max_examples=50, deadline=None)
def test_window_never_exceeds_alpha(alpha, n_events):
    window = SlidingWindow(alpha=alpha)
    for seq in range(n_events):
        window.append(make_event(seq))
        assert len(window) <= alpha
