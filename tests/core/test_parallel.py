"""Tests for the sharded analyzer and its differential oracle."""

from dataclasses import replace

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.openstack.apis import ApiKind
from repro.core.analyzer import GretelAnalyzer
from repro.core.config import GretelConfig
from repro.core.latency import PerformanceAnomaly
from repro.core.parallel import (
    ShardDivergence,
    ShardedAnalyzer,
    report_order_key,
    report_signature,
    source_node_key,
    verify_equivalence,
)
from repro.workloads.traffic import SyntheticStream


@pytest.fixture(scope="module")
def library(small_character):
    return small_character.library


def make_stream(library, fault_every=40, seed=3):
    return SyntheticStream(library, library.symbols,
                           fault_every=fault_every, seed=seed)


def config():
    return GretelConfig(p_rate=150.0)


# ---------------------------------------------------------------------------
# Routing
# ---------------------------------------------------------------------------

def test_router_first_seen_round_robin(library):
    analyzer = ShardedAnalyzer(library, 3, track_latency=False)
    keys = ["ctrl", "nova-ctl", "compute-1", "compute-2", "ctrl", "compute-1"]
    indices = [analyzer.shard_index(k) for k in keys]
    # New keys take shards 0, 1, 2, 0 in first-seen order; repeats are
    # sticky.
    assert indices == [0, 1, 2, 0, 0, 2]
    assert analyzer.assignment == {
        "ctrl": 0, "nova-ctl": 1, "compute-1": 2, "compute-2": 0,
    }


def test_router_is_deterministic_across_runs(library):
    events = make_stream(library).events(500)
    first = ShardedAnalyzer(library, 4, track_latency=False)
    second = ShardedAnalyzer(library, 4, track_latency=False)
    first.ingest(events)
    second.ingest(events)
    assert first.assignment == second.assignment
    assert [s.events_processed for s in first.shards] == \
        [s.events_processed for s in second.shards]


def test_custom_partition_key(library):
    events = make_stream(library).events(200)
    analyzer = ShardedAnalyzer(
        library, 2, key=lambda e: e.dst_service, track_latency=False,
    )
    analyzer.ingest(events)
    assert set(analyzer.assignment) == {e.dst_service for e in events}
    assert analyzer.events_processed == len(events)


def test_shard_count_validation(library):
    with pytest.raises(ValueError):
        ShardedAnalyzer(library, 0)


# ---------------------------------------------------------------------------
# Equivalence with the serial analyzer
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("shards", [1, 2, 4, 8])
@pytest.mark.parametrize("defer", [False, True])
def test_equivalent_to_serial(library, shards, defer):
    events = make_stream(library).events(1500)
    result = verify_equivalence(
        events, library, shards, config=config(),
        batch_size=128, defer_detection=defer, strict=True,
    )
    assert result.ok
    assert result.serial_reports == result.sharded_reports > 0


def test_on_event_streaming_equals_bulk_ingest(library):
    """The buffered streaming entry point produces the same reports as
    scatter-ingesting the whole stream (flush drains partial buffers)."""
    events = make_stream(library).events(1000)

    streaming = ShardedAnalyzer(library, 3, batch_size=64,
                                config=config(), track_latency=False)
    for event in events:
        streaming.on_event(event)
    streaming.flush()

    bulk = ShardedAnalyzer(library, 3, batch_size=64,
                           config=config(), track_latency=False)
    bulk.ingest(events)
    bulk.flush()

    assert [report_signature(r) for r in streaming.reports] == \
        [report_signature(r) for r in bulk.reports]


def test_counters_match_serial(library):
    events = make_stream(library).events(1200)
    serial = GretelAnalyzer(library, config=config(), track_latency=False)
    serial.feed(events)
    serial.flush()

    sharded = ShardedAnalyzer(library, 4, config=config(),
                              track_latency=False, batch_size=100)
    sharded.feed(events)
    sharded.flush()

    assert sharded.events_processed == serial.events_processed == len(events)
    assert sharded.bytes_processed == serial.bytes_processed
    assert sharded.operational_faults_seen == serial.operational_faults_seen
    assert sharded.snapshots_taken == serial.window.snapshots_taken


@given(seed=st.integers(min_value=0, max_value=30),
       shards=st.integers(min_value=1, max_value=6),
       batch=st.sampled_from([1, 7, 64, 1024]))
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_equivalence_property(library, seed, shards, batch):
    """Shard count and chunking never change the report multiset."""
    events = make_stream(library, fault_every=60, seed=seed).events(600)
    result = verify_equivalence(
        events, library, shards, batch_size=batch,
        config=config(), strict=True,
    )
    assert result.ok


# ---------------------------------------------------------------------------
# Merge stage
# ---------------------------------------------------------------------------

def test_reports_merge_in_deterministic_order(library):
    events = make_stream(library, fault_every=50).events(2000)
    analyzer = ShardedAnalyzer(library, 4, batch_size=128,
                               config=config(), track_latency=False)
    analyzer.ingest(events)
    analyzer.flush()
    merged = analyzer.reports
    assert len(merged) > 1
    keys = [report_order_key(r) for r in merged]
    assert keys == sorted(keys)
    # Merged order is reproducible and independent of shard count.
    other = ShardedAnalyzer(library, 2, batch_size=256,
                            config=config(), track_latency=False)
    other.ingest(events)
    other.flush()
    assert [report_signature(r) for r in other.reports] == \
        [report_signature(r) for r in merged]


def test_report_kind_views(library):
    events = make_stream(library, fault_every=50).events(1000)
    analyzer = ShardedAnalyzer(library, 2, config=config(),
                               track_latency=False)
    analyzer.ingest(events)
    analyzer.flush()
    assert all(r.kind == "operational" for r in analyzer.operational_reports)
    assert all(r.kind == "performance" for r in analyzer.performance_reports)
    assert len(analyzer.operational_reports) \
        + len(analyzer.performance_reports) == len(analyzer.reports)


# ---------------------------------------------------------------------------
# Deferred detection on the sharded analyzer
# ---------------------------------------------------------------------------

def test_sharded_deferred_detection_queues_snapshots(library):
    events = make_stream(library, fault_every=40).events(1200)

    deferred = ShardedAnalyzer(library, 3, batch_size=64, config=config(),
                               track_latency=False, defer_detection=True)
    deferred.ingest(events)
    deferred.flush()
    # Snapshots froze but nothing was analyzed yet.
    assert deferred.snapshots_taken > 0
    assert deferred.reports == []
    assert deferred.analysis_seconds == 0.0

    drained = deferred.process_deferred()
    assert drained == deferred.snapshots_taken
    assert len(deferred.reports) == drained > 0
    # Draining twice is a no-op.
    assert deferred.process_deferred() == 0
    assert len(deferred.reports) == drained

    inline = ShardedAnalyzer(library, 3, batch_size=64, config=config(),
                             track_latency=False)
    inline.ingest(events)
    inline.flush()
    assert [report_signature(r) for r in deferred.reports] == \
        [report_signature(r) for r in inline.reports]


def test_sharded_deferred_equivalent_to_serial_deferred(library):
    events = make_stream(library, fault_every=30).events(1500)
    result = verify_equivalence(
        events, library, 4, batch_size=96, config=config(),
        track_latency=False, defer_detection=True, strict=True,
    )
    assert result.ok
    assert result.serial_reports > 0


# ---------------------------------------------------------------------------
# Performance path on the sharded analyzer
# ---------------------------------------------------------------------------

def perf_template(library):
    """A healthy REST event whose API the symbol table knows."""
    return next(
        e for e in make_stream(library).events(200)
        if e.kind is ApiKind.REST and e.status < 400 and not e.noise
    )


def perf_config():
    # Low-warmup level-shift settings so an 80-event series triggers.
    return GretelConfig(ls_warmup=12, ls_confirm=3, ls_min_delta=0.004,
                        p_rate=150.0)


def level_shift_events(library):
    """One API's series: 60 steady latencies, then a 0.08 s shift."""
    template = perf_template(library)

    def event(seq, latency):
        ts = seq * 0.1
        return replace(template, seq=seq, ts_request=ts - latency,
                       ts_response=ts)

    steady = [event(seq, 0.010 + (seq % 3) * 0.0005)
              for seq in range(60)]
    shifted = [event(seq, 0.080) for seq in range(60, 80)]
    return steady + shifted


def test_sharded_performance_path_reports_anomaly(library):
    events = level_shift_events(library)
    analyzer = ShardedAnalyzer(library, 2, batch_size=16,
                               config=perf_config(), track_latency=True)
    analyzer.ingest(events)
    analyzer.flush()
    assert len(analyzer.performance_reports) == 1
    report = analyzer.performance_reports[0]
    assert report.performance is not None
    assert report.performance.api_key == events[0].api_key


def test_sharded_performance_path_equivalent_to_serial(library):
    """The batched recent-history context reconstructs the serial
    window view: the performance diagnosis must match exactly."""
    events = level_shift_events(library)
    result = verify_equivalence(
        events, library, 2, batch_size=16, config=perf_config(),
        track_latency=True, strict=True,
    )
    assert result.ok
    assert result.serial_reports >= 1  # at least the perf report


def test_sharded_perf_debounce_suppresses_repeat_anomalies(library):
    config = perf_config()
    analyzer = ShardedAnalyzer(library, 2, batch_size=16, config=config,
                               track_latency=True)
    shard = analyzer.shards[0]
    trigger = perf_template(library)

    def anomaly(ts):
        return PerformanceAnomaly(api_key=trigger.api_key, ts=ts,
                                  observed=0.08, baseline=0.01,
                                  event=trigger)

    shard.pipeline.process_anomaly(anomaly(ts=100.0))
    assert len(shard.performance_reports) == 1
    # Within the debounce interval on the same API: suppressed.
    shard.pipeline.process_anomaly(
        anomaly(ts=100.0 + config.perf_debounce / 2)
    )
    assert len(shard.performance_reports) == 1
    # Beyond the debounce interval: analyzed again.
    shard.pipeline.process_anomaly(
        anomaly(ts=100.0 + 2 * config.perf_debounce)
    )
    assert len(shard.performance_reports) == 2
    # The merged view sees only this shard's reports.
    assert len(analyzer.performance_reports) == 2


# ---------------------------------------------------------------------------
# Oracle failure modes
# ---------------------------------------------------------------------------

def test_oracle_flags_context_splitting_partition(library):
    """A partition key that shreds one agent's FIFO stream across
    shards breaks context locality — the oracle must catch it, not
    paper over it."""
    events = make_stream(library, fault_every=30).events(1200)
    shredder = lambda event: str(event.seq % 4)  # noqa: E731
    result = verify_equivalence(
        events, library, 4, key=shredder, batch_size=64,
        config=config(), strict=False,
    )
    assert not result.ok
    assert result.missing or result.extra
    assert "DIVERGED" in result.summary()
    with pytest.raises(ShardDivergence):
        verify_equivalence(
            events, library, 4, key=shredder, batch_size=64,
            config=config(), strict=True,
        )


def test_oracle_summary_on_equivalent_run(library):
    events = make_stream(library).events(400)
    result = verify_equivalence(events, library, 2, config=config(),
                                strict=True)
    assert "EQUIVALENT" in result.summary()
    assert result.events == 400


def test_source_node_key_reads_src_node(library):
    event = make_stream(library).events(1)[0]
    assert source_node_key(event) == event.src_node


# ---------------------------------------------------------------------------
# Process backend
# ---------------------------------------------------------------------------

def test_unknown_backend_rejected(library):
    with pytest.raises(ValueError):
        ShardedAnalyzer(library, 2, backend="threads")


def test_process_backend_rejects_middleware(library):
    from repro.core.pipeline import StageTimer

    with pytest.raises(ValueError):
        ShardedAnalyzer(library, 2, backend="process",
                        middleware=(StageTimer(),))


@pytest.mark.parametrize("shards", [1, 2, 4])
def test_process_backend_equivalent_to_serial(library, shards):
    events = make_stream(library, fault_every=40).events(1200)
    result = verify_equivalence(
        events, library, shards, batch_size=128, config=config(),
        strict=True, backend="process",
    )
    assert result.ok
    assert result.serial_reports == result.sharded_reports > 0


def test_process_backend_counters_and_reports_match_inline(library):
    events = make_stream(library).events(1200)
    inline = ShardedAnalyzer(library, 4, config=config(),
                             track_latency=False, batch_size=100)
    inline.feed(events)
    inline.flush()
    with ShardedAnalyzer(library, 4, config=config(),
                         track_latency=False, batch_size=100,
                         backend="process") as proc:
        proc.feed(events)
        proc.flush()
        assert proc.events_processed == len(events)
        assert proc.bytes_processed == inline.bytes_processed
        assert proc.operational_faults_seen == \
            inline.operational_faults_seen
        assert proc.snapshots_taken == inline.snapshots_taken
        assert [report_signature(r) for r in proc.reports] == \
            [report_signature(r) for r in inline.reports]


def test_process_backend_report_listeners_fire_on_parent(library):
    events = make_stream(library, fault_every=40).events(800)
    seen = []
    with ShardedAnalyzer(library, 2, batch_size=64, config=config(),
                         backend="process",
                         report_listeners=(seen.append,)) as analyzer:
        analyzer.ingest(events)
        analyzer.flush()
        assert len(seen) == len(analyzer.reports) > 0


def test_process_backend_checkpoint_roundtrip(library):
    """Snapshot a process-backed run mid-stream, restore into a fresh
    pool, finish the stream: the union of reports matches an
    uninterrupted inline run bit-for-bit."""
    events = make_stream(library, fault_every=40).events(1200)
    cut = 700

    reference = ShardedAnalyzer(library, 2, batch_size=64,
                                config=config(), track_latency=False)
    reference.ingest(events)
    reference.flush()

    first = ShardedAnalyzer(library, 2, batch_size=64, config=config(),
                            track_latency=False, backend="process")
    try:
        for event in events[:cut]:
            first.on_event(event)
        state = first.snapshot_state()
        early = [report_signature(r) for r in first.reports]
    finally:
        first.close()

    second = ShardedAnalyzer(library, 2, batch_size=64, config=config(),
                             track_latency=False, backend="process")
    try:
        second.restore_state(state)
        for event in events[cut:]:
            second.on_event(event)
        second.flush()
        late = [report_signature(r) for r in second.reports]
    finally:
        second.close()

    assert early + late == \
        [report_signature(r) for r in reference.reports]


def test_restore_rejects_mismatched_shard_count(library):
    from repro.core.state import StateError

    donor = ShardedAnalyzer(library, 2, config=config(),
                            track_latency=False)
    state = donor.snapshot_state()
    receiver = ShardedAnalyzer(library, 3, config=config(),
                               track_latency=False)
    with pytest.raises(StateError):
        receiver.restore_state(state)


# ---------------------------------------------------------------------------
# Process-backend failure modes (the negative oracle)
# ---------------------------------------------------------------------------

def test_worker_dropping_a_report_raises_divergence(library, monkeypatch):
    """A worker that loses a report must not pass the oracle."""
    from repro.core import workers

    original = workers.ProcessShard._collect
    state = {"dropped": False}

    def dropping(self, reports):
        reports = list(reports)
        if reports and not state["dropped"]:
            state["dropped"] = True
            reports = reports[1:]
        original(self, reports)

    monkeypatch.setattr(workers.ProcessShard, "_collect", dropping)
    events = make_stream(library, fault_every=40).events(800)
    with pytest.raises(ShardDivergence):
        verify_equivalence(events, library, 2, batch_size=64,
                           config=config(), backend="process")


def test_worker_duplicating_a_report_raises_divergence(
    library, monkeypatch,
):
    """A worker that double-delivers must not pass the oracle."""
    from repro.core import workers

    original = workers.ProcessShard._collect
    state = {"duplicated": False}

    def duplicating(self, reports):
        reports = list(reports)
        if reports and not state["duplicated"]:
            state["duplicated"] = True
            reports = reports + [reports[0]]
        original(self, reports)

    monkeypatch.setattr(workers.ProcessShard, "_collect", duplicating)
    events = make_stream(library, fault_every=40).events(800)
    with pytest.raises(ShardDivergence):
        verify_equivalence(events, library, 2, batch_size=64,
                           config=config(), backend="process")


def test_killed_worker_raises_worker_error_not_hang(library):
    import os
    import signal

    from repro.core.parallel import ShardWorkerError

    events = make_stream(library).events(400)
    analyzer = ShardedAnalyzer(library, 2, batch_size=64,
                               config=config(), track_latency=False,
                               backend="process")
    analyzer.ingest(events)
    victim = analyzer.shards[0]
    os.kill(victim.process.pid, signal.SIGKILL)
    victim.process.join(5)
    with pytest.raises(ShardWorkerError):
        analyzer.flush()
    # The whole pool was torn down, and further work is rejected
    # immediately instead of wedging.
    assert all(shard.closed for shard in analyzer.shards)
    with pytest.raises(ShardWorkerError):
        analyzer.flush()


def test_worker_internal_error_propagates_and_closes_pool(library):
    from repro.core.parallel import ShardWorkerError

    analyzer = ShardedAnalyzer(library, 2, config=config(),
                               track_latency=False, backend="process")
    with pytest.raises(ShardWorkerError) as excinfo:
        analyzer.shards[0].call("no-such-op")
    assert "no-such-op" in str(excinfo.value)
    assert analyzer.shards[0].closed
    analyzer.close()
