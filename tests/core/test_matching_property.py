"""Property tests: incremental scoring is equivalent to from-scratch.

The engine's contract is *bit-identical* equivalence with
``OperationDetector._score`` (see ``docs/matching.md``), so these
properties randomize everything the adaptive loop varies — snapshot
contents, fault position, β growth schedule, candidate needles, cut
points and pure-read flags — and hold the two scorers to exact
equality, including the ``finalized`` side-channel.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.analyzer import GretelAnalyzer
from repro.core.config import GretelConfig
from repro.core.detector import OperationDetector, _Candidate
from repro.core.matching import verify_detection
from repro.workloads.traffic import SyntheticStream

ALPHABET = "ABCDE"


@pytest.fixture(scope="module")
def library(small_character):
    return small_character.library


@pytest.fixture(scope="module")
def detector(library):
    """Any detector works: ``_score`` reads only its config."""
    return OperationDetector(
        library, library.symbols, library.symbols.catalog,
    )


@st.composite
def candidates(draw):
    pure_read = draw(st.booleans())
    needle = draw(st.text(alphabet=ALPHABET, min_size=1, max_size=8))
    if pure_read:
        return _Candidate(
            original=None, sc_symbols="", cut_lengths=[0],
            full_symbols=needle, pure_read=True,
        )
    cuts = draw(st.sets(
        st.integers(min_value=1, max_value=len(needle)), max_size=4,
    ))
    cuts.add(len(needle))
    return _Candidate(
        original=None, sc_symbols=needle, cut_lengths=sorted(cuts),
        full_symbols=needle, pure_read=False,
    )


@st.composite
def scoring_cases(draw):
    fragments = draw(st.lists(
        st.sampled_from(list(ALPHABET) + [""]),
        min_size=1, max_size=40,
    ))
    fault = draw(st.integers(min_value=0, max_value=len(fragments) - 1))
    beta = draw(st.integers(min_value=1, max_value=6))
    delta = draw(st.integers(min_value=1, max_value=5))
    pool = draw(st.lists(candidates(), min_size=1, max_size=6))
    return fragments, fault, beta, delta, pool


def growth_windows(length, fault, beta, delta):
    """Outward β growth around ``fault``, as the adaptive loop walks."""
    windows = []
    while True:
        lo = max(0, fault - beta)
        hi = min(length, fault + beta + 1)
        windows.append((lo, hi))
        if lo == 0 and hi == length:
            return windows
        beta += delta


@given(case=scoring_cases())
@settings(max_examples=150, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_session_equals_reference_on_random_growth(detector, case):
    fragments, fault, beta, delta, pool = case
    session = detector.matching.session(
        fragments, pool,
        threshold=detector.config.match_coverage,
        strict=not detector.config.relaxed_match,
    )
    finalized_ref = {}
    finalized_inc = {}
    for lo, hi in growth_windows(len(fragments), fault, beta, delta):
        buffer_symbols = "".join(fragments[lo:hi])
        reference = detector._score(pool, buffer_symbols, finalized_ref)
        incremental = session.score(lo, hi, finalized_inc)
        assert incremental == reference
        assert finalized_inc == finalized_ref


@given(case=scoring_cases(), strict=st.booleans())
@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_session_equals_reference_without_finalization(
        detector, case, strict):
    """Single-shot windows (no ``finalized`` dict), both strictness
    profiles — the non-adaptive / performance-fault path."""
    fragments, fault, beta, delta, pool = case
    config = GretelConfig(relaxed_match=not strict)
    reference_detector = OperationDetector(
        detector.library, detector.symbols, detector.catalog, config,
    )
    session = reference_detector.matching.session(
        fragments, pool,
        threshold=config.match_coverage, strict=strict,
    )
    for lo, hi in growth_windows(len(fragments), fault, beta, delta):
        buffer_symbols = "".join(fragments[lo:hi])
        reference = reference_detector._score(pool, buffer_symbols)
        assert session.score(lo, hi) == reference


@given(
    seed=st.integers(min_value=0, max_value=200),
    fault_every=st.integers(min_value=20, max_value=200),
    count=st.integers(min_value=50, max_value=600),
)
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_detect_equivalence_on_random_streams(library, seed, fault_every,
                                              count):
    """End-to-end: full ``detect`` over randomized synthetic streams
    produces identical results with the engine on and off."""
    stream = SyntheticStream(library, library.symbols,
                             fault_every=fault_every, seed=seed)
    analyzer = GretelAnalyzer(
        library, track_latency=False, defer_detection=True,
    )
    analyzer.feed(stream.generate(count))
    analyzer.flush()
    snapshots = list(analyzer.pipeline._deferred)
    outcome = verify_detection(snapshots, library)
    assert outcome.ok, outcome.summary()
