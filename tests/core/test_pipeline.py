"""Tests for the composable analysis pipeline (builder, middleware,
stage graph, merged stats)."""

import pytest

from repro.core.analyzer import GretelAnalyzer
from repro.core.config import GretelConfig
from repro.core.parallel import ShardedAnalyzer, report_signature
from repro.core.pipeline import (
    STAGE_NAMES,
    PipelineBuilder,
    PipelineStats,
    StageCounters,
    StageTimer,
)
from repro.workloads.traffic import SyntheticStream


@pytest.fixture(scope="module")
def library(small_character):
    return small_character.library


def make_stream(library, fault_every=40, seed=3):
    return SyntheticStream(library, library.symbols,
                           fault_every=fault_every, seed=seed)


def config():
    return GretelConfig(p_rate=150.0)


# ---------------------------------------------------------------------------
# Builder
# ---------------------------------------------------------------------------

def test_build_serial_equals_direct_construction(library):
    events = make_stream(library).events(800)

    direct = GretelAnalyzer(library, config=config(), track_latency=False)
    direct.feed(events)
    direct.flush()

    built = (
        PipelineBuilder(library)
        .with_config(config())
        .track_latency(False)
        .build_serial()
    )
    built.feed(events)
    built.flush()

    assert built.alpha == direct.alpha
    assert built.events_processed == direct.events_processed
    assert [report_signature(r) for r in built.reports] == \
        [report_signature(r) for r in direct.reports]


def test_build_sharded_equals_direct_construction(library):
    events = make_stream(library).events(800)

    direct = ShardedAnalyzer(library, 3, batch_size=64,
                             config=config(), track_latency=False)
    direct.ingest(events)
    direct.flush()

    built = (
        PipelineBuilder(library)
        .with_config(config())
        .track_latency(False)
        .build_sharded(3, batch_size=64)
    )
    built.ingest(events)
    built.flush()

    assert built.n_shards == 3
    assert [report_signature(r) for r in built.reports] == \
        [report_signature(r) for r in direct.reports]


def test_builder_defaults_resolve_collaborators(library):
    analyzer = PipelineBuilder(library).build_serial()
    assert analyzer.library is library
    assert analyzer.symbols is library.symbols
    assert analyzer.catalog is not None
    assert analyzer.store is not None
    assert analyzer.config is not None
    assert analyzer.track_latency is True
    assert analyzer.defer_detection is False


def test_builder_none_setters_keep_defaults(library):
    store = None
    analyzer = (
        PipelineBuilder(library)
        .with_symbols(None)
        .with_catalog(None)
        .with_store(store)
        .with_config(None)
        .build_serial()
    )
    assert analyzer.symbols is library.symbols


def test_builder_report_listener_fires(library):
    events = make_stream(library).events(600)
    seen = []
    analyzer = (
        PipelineBuilder(library)
        .with_config(config())
        .track_latency(False)
        .on_report(seen.append)
        .build_serial()
    )
    analyzer.feed(events)
    analyzer.flush()
    assert len(analyzer.reports) > 0
    assert seen == analyzer.reports


def test_builder_report_listener_on_every_shard(library):
    events = make_stream(library).events(800)
    seen = []
    analyzer = (
        PipelineBuilder(library)
        .with_config(config())
        .track_latency(False)
        .on_report(seen.append)
        .build_sharded(3, batch_size=64)
    )
    analyzer.ingest(events)
    analyzer.flush()
    assert len(seen) == len(analyzer.reports) > 0


# ---------------------------------------------------------------------------
# Middleware
# ---------------------------------------------------------------------------

def test_middleware_counts_serial_stages(library):
    events = make_stream(library).events(500)
    counters = StageCounters()
    analyzer = (
        PipelineBuilder(library)
        .with_config(config())
        .with_middleware(counters)
        .build_serial()
    )
    analyzer.feed(events)
    analyzer.flush()
    assert counters.items["ingest"] == len(events)
    assert counters.items["window"] == len(events)
    assert counters.items["fault-scan"] == len(events)
    assert counters.calls["detect"] == len(analyzer.reports)
    assert counters.calls["publish"] == len(analyzer.reports)
    assert set(counters.calls) <= set(STAGE_NAMES)


def test_middleware_counts_sharded_stages(library):
    events = make_stream(library).events(1000)
    counters = StageCounters()
    timer = StageTimer()
    analyzer = (
        PipelineBuilder(library)
        .with_config(config())
        .track_latency(False)
        .with_middleware(counters)
        .with_middleware(timer)
        .build_sharded(4, batch_size=128)
    )
    analyzer.ingest(events)
    analyzer.flush()
    # Observers are shared by all shards: totals span the whole stream.
    assert counters.items["ingest"] == len(events)
    assert counters.calls["publish"] == len(analyzer.reports)
    assert timer.calls["ingest"] == counters.calls["ingest"]
    assert all(cost >= 0.0 for cost in timer.seconds.values())


def test_middleware_does_not_change_reports(library):
    events = make_stream(library).events(800)

    plain = GretelAnalyzer(library, config=config())
    plain.feed(events)
    plain.flush()

    observed = (
        PipelineBuilder(library)
        .with_config(config())
        .with_middleware(StageCounters())
        .build_serial()
    )
    observed.feed(events)
    observed.flush()

    assert [report_signature(r) for r in observed.reports] == \
        [report_signature(r) for r in plain.reports]


def test_stage_timer_summary_renders(library):
    events = make_stream(library).events(400)
    timer = StageTimer()
    analyzer = (
        PipelineBuilder(library)
        .with_config(config())
        .with_middleware(timer)
        .build_serial()
    )
    analyzer.feed(events)
    analyzer.flush()
    summary = timer.summary()
    assert "ingest" in summary
    assert "step" in summary
    assert StageTimer().summary() == "no stages observed"


# ---------------------------------------------------------------------------
# Stats
# ---------------------------------------------------------------------------

def test_pipeline_stats_add_and_merge():
    a = PipelineStats(events_processed=2, bytes_processed=10,
                      operational_faults_seen=1, snapshots_taken=1,
                      analysis_seconds=0.5)
    b = PipelineStats(events_processed=3, bytes_processed=5,
                      operational_faults_seen=0, snapshots_taken=2,
                      analysis_seconds=0.25)
    total = a + b
    assert total == PipelineStats(5, 15, 1, 3, 0.75)
    assert PipelineStats.merged([a, b, PipelineStats()]) == total
    assert PipelineStats.merged([]) == PipelineStats()


def test_sharded_stats_merge_matches_counters(library):
    events = make_stream(library).events(900)
    analyzer = ShardedAnalyzer(library, 3, batch_size=128,
                               config=config(), track_latency=False)
    analyzer.ingest(events)
    analyzer.flush()
    stats = analyzer.stats()
    assert stats == PipelineStats.merged(
        shard.stats() for shard in analyzer.shards
    )
    # The aggregate counters resolve through the same merge.
    assert analyzer.events_processed == stats.events_processed == len(events)
    assert analyzer.bytes_processed == stats.bytes_processed
    assert analyzer.snapshots_taken == stats.snapshots_taken
    assert analyzer.analysis_seconds == stats.analysis_seconds


def test_sharded_unknown_attribute_raises(library):
    analyzer = ShardedAnalyzer(library, 2, track_latency=False)
    with pytest.raises(AttributeError):
        analyzer.not_a_counter


# ---------------------------------------------------------------------------
# Facade wiring
# ---------------------------------------------------------------------------

def test_facade_views_are_pipeline_state(library):
    analyzer = (
        PipelineBuilder(library).with_config(config()).build_serial()
    )
    pipeline = analyzer.pipeline
    assert analyzer.window is pipeline.window
    assert analyzer.detector is pipeline.detector
    assert analyzer.latency is pipeline.tracker
    assert analyzer.rootcause is pipeline.engine
    assert analyzer.reports is pipeline.reports
    assert analyzer.alpha == pipeline.alpha


def test_shards_compose_shared_wiring(library):
    analyzer = ShardedAnalyzer(library, 3, config=config())
    stores = {id(shard.store) for shard in analyzer.shards}
    configs = {id(shard.config) for shard in analyzer.shards}
    windows = {id(shard.window) for shard in analyzer.shards}
    # One metadata store and config shared; per-shard windows distinct.
    assert stores == {id(analyzer.store)}
    assert configs == {id(analyzer.config)}
    assert len(windows) == 3
