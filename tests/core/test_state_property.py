"""Property tests: snapshot/restore is invisible at every layer.

The state protocol's contract (``repro.core.state``) is *bit-identical*
rehydration: freeze a layer mid-stream through a real JSON round trip,
restore into a freshly constructed twin, and the twin must be
indistinguishable from the uninterrupted original on any subsequent
input.  These properties randomize the stream, the freeze point and
the layer tuning, and drive the original and the restored twin in
lockstep afterwards.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.streamstats.detector import IncrementalLevelShiftDetector
from repro.core.streamstats.window import SortedWindow
from repro.core.window import SlidingWindow
from repro.openstack.apis import ApiKind
from repro.openstack.wire import WireEvent


def round_trip(state):
    """An actual JSON round trip — serializability is part of the
    contract, not an assumption."""
    return json.loads(json.dumps(state))


def make_event(seq, status=200):
    return WireEvent(
        seq=seq, api_key="rest:nova:GET:/v2.1/servers", kind=ApiKind.REST,
        method="GET", name="/v2.1/servers",
        src_service="horizon", src_node="ctrl", src_ip="1",
        dst_service="nova", dst_node="nova-ctl", dst_ip="2",
        ts_request=seq * 1.0, ts_response=seq * 1.0 + 0.01, status=status,
    )


# ---------------------------------------------------------------------------
# SlidingWindow
# ---------------------------------------------------------------------------

@st.composite
def window_runs(draw):
    alpha = draw(st.integers(min_value=2, max_value=24))
    total = draw(st.integers(min_value=1, max_value=80))
    faults = draw(st.sets(
        st.integers(min_value=0, max_value=total - 1), max_size=6,
    ))
    cut = draw(st.integers(min_value=0, max_value=total))
    return alpha, total, faults, cut


@given(case=window_runs())
@settings(max_examples=120, deadline=None)
def test_sliding_window_round_trip(case):
    alpha, total, faults, cut = case

    def feed(window, seq):
        event = make_event(seq, status=500 if seq in faults else 200)
        frozen = window.append(event)
        if seq in faults:
            window.mark_fault(event)
        return [snapshot.to_dict() for snapshot in frozen]

    original = SlidingWindow(alpha=alpha)
    for seq in range(cut):
        feed(original, seq)

    restored = SlidingWindow(alpha=alpha)
    restored.restore_state(round_trip(original.snapshot_state()))

    for seq in range(cut, total):
        assert feed(original, seq) == feed(restored, seq)
    assert original.appended == restored.appended
    assert original.snapshots_taken == restored.snapshots_taken
    assert original.pending_snapshots == restored.pending_snapshots
    # End-of-stream freezes must agree too (pending order survives).
    assert (
        [s.to_dict() for s in original.flush()]
        == [s.to_dict() for s in restored.flush()]
    )


def test_sliding_window_refuses_alpha_mismatch():
    from repro.core.state import StateError

    original = SlidingWindow(alpha=8)
    state = original.snapshot_state()
    with pytest.raises(StateError, match="alpha"):
        SlidingWindow(alpha=10).restore_state(state)


# ---------------------------------------------------------------------------
# SortedWindow
# ---------------------------------------------------------------------------

finite_floats = st.floats(
    min_value=-1e9, max_value=1e9,
    allow_nan=False, allow_infinity=False,
)


@given(
    maxlen=st.integers(min_value=1, max_value=16),
    values=st.lists(finite_floats, max_size=60),
    tail=st.lists(finite_floats, max_size=30),
)
@settings(max_examples=150, deadline=None)
def test_sorted_window_round_trip(maxlen, values, tail):
    original = SortedWindow(maxlen)
    for value in values:
        original.append(value)

    restored = SortedWindow(maxlen)
    restored.restore_state(round_trip(original.snapshot_state()))

    assert list(restored) == list(original)
    assert restored.version == original.version
    for value in tail:
        original.append(value)
        restored.append(value)
        assert list(restored) == list(original)
        if len(original):
            assert restored.median_mad() == original.median_mad()
            assert restored.bounds() == original.bounds()


# ---------------------------------------------------------------------------
# IncrementalLevelShiftDetector
# ---------------------------------------------------------------------------

@st.composite
def latency_streams(draw):
    window = draw(st.integers(min_value=4, max_value=16))
    confirm = draw(st.integers(min_value=1, max_value=4))
    total = draw(st.integers(min_value=0, max_value=120))
    cut = draw(st.integers(min_value=0, max_value=total))
    # Mostly quiet samples with occasional large spikes, so alarms,
    # pending streaks, cooldowns and re-seeds all actually occur.
    samples = draw(st.lists(
        st.one_of(
            st.floats(min_value=0.001, max_value=0.02,
                      allow_nan=False),
            st.floats(min_value=0.5, max_value=5.0, allow_nan=False),
        ),
        min_size=total, max_size=total,
    ))
    return window, confirm, samples, cut


def observe(detector, ts, value):
    """Everything externally visible after one sample."""
    shift = detector.update(ts, value)
    return (
        None if shift is None else shift.to_dict(),
        detector.baseline,
        detector.threshold(),
        detector.threshold_recomputes,
        len(detector.alarms),
    )


@given(case=latency_streams())
@settings(max_examples=120, deadline=None)
def test_incremental_ls_round_trip(case):
    window, confirm, samples, cut = case

    def build():
        return IncrementalLevelShiftDetector(
            window=window, confirm=confirm, warmup=confirm + 1,
            cooldown=3.0,
        )

    original = build()
    for index, value in enumerate(samples[:cut]):
        original.update(float(index), value)

    restored = build()
    restored.restore_state(round_trip(original.snapshot_state()))

    for index in range(cut, len(samples)):
        assert (
            observe(original, float(index), samples[index])
            == observe(restored, float(index), samples[index])
        )
    assert (
        [a.to_dict() for a in original.alarms]
        == [a.to_dict() for a in restored.alarms]
    )


def test_incremental_ls_refuses_retuned_restore():
    from repro.core.state import StateError

    original = IncrementalLevelShiftDetector(window=8)
    state = original.snapshot_state()
    with pytest.raises(StateError):
        IncrementalLevelShiftDetector(window=12).restore_state(state)


# ---------------------------------------------------------------------------
# MatchSession
# ---------------------------------------------------------------------------

ALPHABET = "ABCDE"


@pytest.fixture(scope="module")
def detector(small_character):
    from repro.core.detector import OperationDetector

    library = small_character.library
    return OperationDetector(
        library, library.symbols, library.symbols.catalog,
    )


@st.composite
def match_cases(draw):
    from repro.core.detector import _Candidate

    fragments = draw(st.lists(
        st.sampled_from(list(ALPHABET) + [""]),
        min_size=1, max_size=30,
    ))
    pool = []
    for _ in range(draw(st.integers(min_value=1, max_value=5))):
        needle = draw(st.text(
            alphabet=ALPHABET, min_size=1, max_size=8,
        ))
        cuts = draw(st.sets(
            st.integers(min_value=1, max_value=len(needle)), max_size=3,
        ))
        cuts.add(len(needle))
        pool.append(_Candidate(
            original=None, sc_symbols=needle,
            cut_lengths=sorted(cuts), full_symbols=needle,
            pure_read=False,
        ))
    # Outward-growing (lo, hi) windows with a freeze between two.
    spans = draw(st.integers(min_value=2, max_value=6))
    fault = draw(st.integers(min_value=0, max_value=len(fragments) - 1))
    windows = []
    beta = 1
    for _ in range(spans):
        windows.append((max(0, fault - beta),
                        min(len(fragments), fault + beta + 1)))
        beta += draw(st.integers(min_value=1, max_value=4))
    cut = draw(st.integers(min_value=1, max_value=spans - 1))
    return fragments, pool, windows, cut


@given(case=match_cases())
@settings(max_examples=80, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_match_session_round_trip(detector, case):
    fragments, pool, windows, cut = case

    def build():
        return detector.matching.session(
            fragments, pool,
            threshold=detector.config.match_coverage,
            strict=not detector.config.relaxed_match,
        )

    original = build()
    finalized_orig = {}
    finalized_rest = {}
    for lo, hi in windows[:cut]:
        original.score(lo, hi, finalized_orig)

    restored = build()
    restored.restore_state(round_trip(original.snapshot_state()))
    finalized_rest.update(finalized_orig)

    for lo, hi in windows[cut:]:
        assert (
            original.score(lo, hi, finalized_orig)
            == restored.score(lo, hi, finalized_rest)
        )
        assert finalized_orig == finalized_rest


def test_match_session_refuses_candidate_count_mismatch(detector):
    from repro.core.detector import _Candidate
    from repro.core.state import StateError

    def pool(size):
        return [
            _Candidate(
                original=None, sc_symbols="AB", cut_lengths=[2],
                full_symbols="AB", pure_read=False,
            )
            for _ in range(size)
        ]

    def build(size):
        return detector.matching.session(
            ["A", "B"], pool(size),
            threshold=detector.config.match_coverage, strict=True,
        )

    state = build(2).snapshot_state()
    with pytest.raises(StateError, match="candidates"):
        build(3).restore_state(state)
