"""Tests for operational fault detection (regex scans)."""

from repro.openstack.apis import ApiKind
from repro.openstack.wire import WireEvent
from repro.core.opfaults import (
    is_operational_fault,
    is_rest_fault,
    rest_error_status,
    rpc_body_error,
)


def make_event(kind=ApiKind.REST, status=200, body=""):
    return WireEvent(
        seq=1, api_key="k", kind=kind, method="GET" if kind is ApiKind.REST else "call",
        name="/x", src_service="a", src_node="n1", src_ip="1",
        dst_service="b", dst_node="n2", dst_ip="2",
        ts_request=0.0, ts_response=0.01, status=status, body=body,
    )


def test_rest_status_codes():
    assert rest_error_status(make_event(status=200)) is None
    assert rest_error_status(make_event(status=404)) == 404
    assert rest_error_status(make_event(status=500)) == 500
    assert rest_error_status(make_event(kind=ApiKind.RPC, status=500)) is None


def test_rpc_failure_envelope_detected():
    event = make_event(kind=ApiKind.RPC, status=200,
                       body='{"oslo.message": {"failure": "RemoteError"}}')
    assert rpc_body_error(event)
    assert is_operational_fault(event)


def test_rpc_timeout_detected():
    event = make_event(kind=ApiKind.RPC, status=200,
                       body="MessagingTimeout: no reply on topic nova")
    assert rpc_body_error(event)


def test_rpc_no_valid_host_detected():
    event = make_event(kind=ApiKind.RPC, status=200,
                       body='{"failure": "NoValidHost", "message": "..."}')
    assert rpc_body_error(event)


def test_rpc_healthy_body_clean():
    event = make_event(kind=ApiKind.RPC, status=200,
                       body='{"result": {"host": "compute-1"}}')
    assert not rpc_body_error(event)
    assert not is_operational_fault(event)


def test_rpc_empty_body_clean():
    assert not rpc_body_error(make_event(kind=ApiKind.RPC, status=200))


def test_rpc_error_status_detected_without_body():
    assert rpc_body_error(make_event(kind=ApiKind.RPC, status=500))


def test_rest_fault_gate_is_rest_only():
    assert is_rest_fault(make_event(status=500))
    assert not is_rest_fault(make_event(status=200))
    assert not is_rest_fault(make_event(kind=ApiKind.RPC, status=500))


def test_generic_error_message_pattern():
    event = make_event(kind=ApiKind.RPC, status=200,
                       body='{"message": "volume backend unavailable"}')
    assert rpc_body_error(event)
