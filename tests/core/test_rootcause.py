"""Tests for root cause analysis (Algorithm 3)."""

import pytest

from repro.openstack.apis import ApiKind
from repro.openstack.resources import ResourceSample
from repro.openstack.wire import WireEvent
from repro.core.config import GretelConfig
from repro.core.detector import DetectionResult
from repro.core.fingerprint import Fingerprint
from repro.core.rootcause import RootCauseEngine
from repro.monitoring.store import MetadataStore, WatcherReport


def make_sample(node, ts, cpu=0.05, disk_free=600.0, mem_used=20_000.0):
    return ResourceSample(
        node=node, ts=ts, cpu_util=cpu,
        mem_used_mb=mem_used, mem_total_mb=131_072.0,
        disk_free_gb=disk_free, disk_total_gb=900.0,
        net_mbps=1.0, disk_io_ops=5.0,
    )


def make_detection(src_node="ctrl", dst_node="nova-ctl", nodes=()):
    fault = WireEvent(
        seq=1, api_key="rest:nova:GET:/v2.1/servers/{id}", kind=ApiKind.REST,
        method="GET", name="/v2.1/servers/{id}",
        src_service="horizon", src_node=src_node, src_ip="1",
        dst_service="nova", dst_node=dst_node, dst_ip="2",
        ts_request=99.0, ts_response=100.0, status=500,
    )
    fingerprint = Fingerprint(
        operation="op", symbols="", state_change_mask=(),
        nodes=tuple(nodes),
    )
    return DetectionResult(
        fault=fault, matched=[fingerprint], candidates=1, theta=1.0,
        beta_used=10, iterations=1, window_span=(95.0, 105.0),
    )


def seed_healthy(store, nodes, until=110.0):
    for node in nodes:
        for ts in range(0, int(until)):
            store.add_sample(make_sample(node, float(ts)))
        store.add_watcher_report(WatcherReport(node, until, "ntp", True))


def test_healthy_nodes_yield_no_findings():
    store = MetadataStore()
    seed_healthy(store, ["ctrl", "nova-ctl"])
    engine = RootCauseEngine(store)
    assert engine.analyze(make_detection()) == []


def test_cpu_anomaly_on_error_node():
    store = MetadataStore()
    seed_healthy(store, ["ctrl"])
    for ts in range(0, 95):
        store.add_sample(make_sample("nova-ctl", float(ts)))
    for ts in range(95, 108):
        store.add_sample(make_sample("nova-ctl", float(ts), cpu=0.85))
    engine = RootCauseEngine(store)
    findings = engine.analyze(make_detection())
    assert any(f.kind == "resource" and f.subject == "cpu"
               and f.node == "nova-ctl" for f in findings)


def test_low_disk_detected():
    store = MetadataStore()
    seed_healthy(store, ["ctrl"])
    for ts in range(0, 110):
        store.add_sample(make_sample("nova-ctl", float(ts), disk_free=5.0))
    engine = RootCauseEngine(store)
    findings = engine.analyze(make_detection())
    assert any(f.subject == "disk" and f.node == "nova-ctl" for f in findings)


def test_memory_pressure_detected():
    store = MetadataStore()
    seed_healthy(store, ["ctrl"])
    for ts in range(0, 110):
        store.add_sample(make_sample("nova-ctl", float(ts), mem_used=128_000.0))
    engine = RootCauseEngine(store)
    findings = engine.analyze(make_detection())
    assert any(f.subject == "memory" for f in findings)


def test_dead_process_detected():
    store = MetadataStore()
    seed_healthy(store, ["ctrl", "nova-ctl"])
    store.add_watcher_report(WatcherReport("nova-ctl", 90.0, "nova-api", False))
    engine = RootCauseEngine(store)
    findings = engine.analyze(make_detection())
    assert any(f.kind == "software" and f.subject == "nova-api" for f in findings)


def test_upstream_expansion_when_error_nodes_clean():
    """Algorithm 3: only when the error's src/dst nodes are clean does
    the search expand to the operation's remaining nodes."""
    store = MetadataStore()
    seed_healthy(store, ["ctrl", "nova-ctl", "compute-1"])
    store.add_watcher_report(
        WatcherReport("compute-1", 90.0, "neutron-plugin-linuxbridge-agent", False)
    )
    engine = RootCauseEngine(store)
    detection = make_detection(nodes=["ctrl", "nova-ctl", "compute-1"])
    findings = engine.analyze(detection)
    assert any(f.node == "compute-1" for f in findings)


def test_error_node_findings_stop_expansion():
    """If the error nodes already explain the fault, upstream nodes are
    not searched."""
    store = MetadataStore()
    seed_healthy(store, ["ctrl", "nova-ctl", "compute-1"])
    store.add_watcher_report(WatcherReport("nova-ctl", 90.0, "nova-api", False))
    store.add_watcher_report(
        WatcherReport("compute-1", 90.0, "libvirtd", False)
    )
    engine = RootCauseEngine(store)
    detection = make_detection(nodes=["compute-1"])
    findings = engine.analyze(detection)
    assert all(f.node == "nova-ctl" for f in findings)


def test_process_recovery_clears_finding():
    store = MetadataStore()
    seed_healthy(store, ["ctrl", "nova-ctl"])
    store.add_watcher_report(WatcherReport("nova-ctl", 80.0, "nova-api", False))
    store.add_watcher_report(WatcherReport("nova-ctl", 95.0, "nova-api", True))
    engine = RootCauseEngine(store)
    assert engine.analyze(make_detection()) == []


def test_no_metadata_no_findings():
    engine = RootCauseEngine(MetadataStore())
    assert engine.analyze(make_detection()) == []


def test_finding_str_rendering():
    store = MetadataStore()
    seed_healthy(store, ["ctrl"])
    store.add_watcher_report(WatcherReport("nova-ctl", 90.0, "mysql", False))
    engine = RootCauseEngine(store)
    findings = engine.analyze(make_detection())
    assert findings
    text = str(findings[0])
    assert "mysql" in text and "nova-ctl" in text
