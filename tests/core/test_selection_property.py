"""Property test: indexed candidate selection ≡ the full scan.

Algorithm 2's first step has two implementations — the reference
linear scan over ``ops_containing`` and the compiled inverted index
(``repro.analysis.compile``).  This differential property drives both
through random libraries, random selection-flag configurations, and
random offending symbols (including symbols no fingerprint contains)
and requires signature-identical candidate lists: same operations in
the same pinned order, with the same preparation content (required
symbols, truncation cut points, pure-read classification).
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis.compile import candidate_signature, compile_library
from repro.core.config import GretelConfig
from repro.core.detector import OperationDetector
from repro.core.fingerprint import Fingerprint, FingerprintLibrary
from repro.core.symbols import SymbolTable
from repro.openstack.catalog import default_catalog

_CATALOG = default_catalog()
_SYMBOLS = SymbolTable(_CATALOG)
# A mixed pool: REST state changes, reads, and RPCs so ``prune_rpcs``
# has something to prune.
_KEYS = [api.key for api in _CATALOG.apis][:48]


def _build_library(drawn):
    library = FingerprintLibrary(_SYMBOLS)
    for i, keys in enumerate(drawn):
        library.add(Fingerprint(
            operation=f"op-{i:02d}",
            symbols=_SYMBOLS.encode(keys),
            state_change_mask=tuple(
                _CATALOG.get(key).state_change for key in keys
            ),
        ))
    return library


@settings(
    max_examples=50, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(data=st.data())
def test_indexed_selection_equals_full_scan(data):
    drawn = data.draw(st.lists(
        st.lists(st.sampled_from(_KEYS), min_size=1, max_size=10),
        min_size=1, max_size=8,
    ))
    library = _build_library(drawn)
    config = GretelConfig(
        prune_rpcs=data.draw(st.booleans()),
        relaxed_match=data.draw(st.booleans()),
        truncate_fingerprints=data.draw(st.booleans()),
    )
    index = compile_library(library, config=config)

    indexed = OperationDetector(
        library, _SYMBOLS, _CATALOG, config, compiled_index=index,
    )
    reference = OperationDetector(
        library, _SYMBOLS, _CATALOG,
        GretelConfig(
            prune_rpcs=config.prune_rpcs,
            relaxed_match=config.relaxed_match,
            truncate_fingerprints=config.truncate_fingerprints,
            indexed_selection=False,
        ),
    )

    # Queried symbols include ones absent from every fingerprint.
    queries = data.draw(st.lists(
        st.sampled_from(_KEYS), min_size=1, max_size=6, unique=True,
    ))
    for api_key in queries:
        for truncate in (True, False):
            expected = [
                candidate_signature(c) for c in
                reference.candidates_for(api_key, truncate=truncate)
            ]
            actual = [
                candidate_signature(c) for c in
                indexed.candidates_for(api_key, truncate=truncate)
            ]
            assert actual == expected, (
                f"{api_key} truncate={truncate}: indexed selection "
                f"diverged under flags {index.flags}"
            )
    # Counters prove the indexed path actually served the lookups.
    assert indexed.candidates_indexed == indexed.postings_scanned
