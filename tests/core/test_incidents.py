"""Tests for incident aggregation."""

import json

import pytest

from repro.openstack.apis import ApiKind
from repro.openstack.wire import WireEvent
from repro.core.detector import DetectionResult
from repro.core.fingerprint import Fingerprint
from repro.core.incidents import IncidentAggregator
from repro.core.reports import FaultReport, RootCauseFinding


def make_report(ts, *, ops=(), causes=(), src="ctrl", dst="nova-ctl",
                kind="operational"):
    event = WireEvent(
        seq=int(ts * 1000), api_key="k", kind=ApiKind.REST, method="GET",
        name="/x", src_service="a", src_node=src, src_ip="1",
        dst_service="b", dst_node=dst, dst_ip="2",
        ts_request=ts - 0.01, ts_response=ts, status=500,
    )
    matched = [
        Fingerprint(operation=op, symbols="", state_change_mask=())
        for op in ops
    ]
    detection = DetectionResult(
        fault=event, matched=matched, candidates=max(1, len(matched)),
        theta=1.0, beta_used=1, iterations=1, window_span=(ts - 1, ts + 1),
    )
    return FaultReport(
        ts=ts, kind=kind, fault_event=event, detection=detection,
        root_causes=[RootCauseFinding(node=n, kind=k, subject=s, detail=d)
                     for n, k, s, d in causes],
    )


def test_cascade_with_shared_cause_is_one_incident():
    aggregator = IncidentAggregator(window=10.0)
    cause = ("cinder-node", "software", "ntp", "down")
    aggregator.add(make_report(1.0, causes=[cause]))
    aggregator.add(make_report(1.5, causes=[cause], src="x", dst="y"))
    assert len(aggregator.incidents) == 1
    assert len(aggregator.incidents[0].reports) == 2


def test_shared_operations_group():
    aggregator = IncidentAggregator()
    aggregator.add(make_report(1.0, ops=["op-a", "op-b"], src="n1", dst="n2"))
    aggregator.add(make_report(2.0, ops=["op-b"], src="n3", dst="n4"))
    assert len(aggregator.incidents) == 1


def test_shared_node_pair_groups():
    aggregator = IncidentAggregator()
    aggregator.add(make_report(1.0, src="glance-node", dst="ctrl"))
    aggregator.add(make_report(2.0, src="glance-node", dst="ctrl"))
    assert len(aggregator.incidents) == 1


def test_unrelated_reports_split():
    aggregator = IncidentAggregator()
    aggregator.add(make_report(1.0, ops=["op-a"], src="n1", dst="n2",
                               causes=[("n1", "software", "x", "d")]))
    aggregator.add(make_report(2.0, ops=["op-z"], src="n8", dst="n9",
                               causes=[("n9", "resource", "cpu", "d")]))
    assert len(aggregator.incidents) == 2


def test_time_window_splits_even_related():
    aggregator = IncidentAggregator(window=5.0)
    cause = ("ctrl", "software", "mysql", "down")
    aggregator.add(make_report(1.0, causes=[cause]))
    aggregator.add(make_report(60.0, causes=[cause]))
    assert len(aggregator.incidents) == 2


def test_operations_ranked_by_frequency():
    aggregator = IncidentAggregator()
    aggregator.add(make_report(1.0, ops=["op-a", "op-b"]))
    aggregator.add(make_report(1.5, ops=["op-b"]))
    incident = aggregator.incidents[0]
    assert incident.operations[0] == "op-b"


def test_root_causes_deduplicated():
    aggregator = IncidentAggregator()
    cause = ("ctrl", "software", "mysql", "down")
    aggregator.add(make_report(1.0, causes=[cause]))
    aggregator.add(make_report(1.2, causes=[cause]))
    assert len(aggregator.incidents[0].root_causes) == 1


def test_summary_and_export(tmp_path):
    aggregator = IncidentAggregator()
    aggregator.add(make_report(
        1.0, ops=["op-a"], causes=[("ctrl", "software", "mysql", "down")],
    ))
    incident = aggregator.incidents[0]
    assert "incident #1" in incident.summary()
    assert "mysql" in incident.summary()

    path = tmp_path / "incidents.json"
    payload = aggregator.export_json(str(path))
    loaded = json.loads(path.read_text())
    assert loaded == json.loads(payload)
    assert loaded["incidents"][0]["operations"] == ["op-a"]
    assert loaded["incidents"][0]["faults"][0]["status"] == 500


def test_add_all_sorts_by_time():
    aggregator = IncidentAggregator()
    cause = ("ctrl", "software", "mysql", "down")
    reports = [make_report(5.0, causes=[cause]),
               make_report(1.0, causes=[cause])]
    aggregator.add_all(reports)
    assert len(aggregator.incidents) == 1


def test_window_validation():
    with pytest.raises(ValueError):
        IncidentAggregator(window=0.0)


def test_end_to_end_cascade_grouping(full_character, suite):
    """The §7.2.4 NTP cascade (401 + 503) folds into one incident."""
    from repro.evaluation.common import make_monitored_analyzer
    from repro.workloads.runner import WorkloadRunner

    cloud, plane, analyzer = make_monitored_analyzer(full_character, seed=61)
    cloud.faults.crash_process("cinder-node", "ntp")
    test = next(t for t in suite.tests if t.name.startswith("storage.queries"))
    WorkloadRunner(cloud).run_isolated(test, settle=2.0)
    analyzer.flush()
    assert len(analyzer.operational_reports) >= 2  # the 401 + the 503

    aggregator = IncidentAggregator()
    aggregator.add_all(analyzer.reports)
    assert len(aggregator.incidents) == 1
    incident = aggregator.incidents[0]
    assert any(c.subject == "ntp" for c in incident.root_causes)


from hypothesis import HealthCheck, given, settings, strategies as st


@given(
    data=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            st.sampled_from(["op-a", "op-b", "op-c", ""]),
            st.sampled_from(["n1", "n2", "n3"]),
            st.sampled_from(["n1", "n4", "n5"]),
        ),
        max_size=30,
    )
)
@settings(max_examples=50, deadline=None)
def test_aggregation_invariants(data):
    """Every report lands in exactly one incident; time bounds hold."""
    aggregator = IncidentAggregator(window=5.0)
    reports = [
        make_report(ts, ops=[op] if op else [], src=src, dst=dst)
        for ts, op, src, dst in data
    ]
    aggregator.add_all(reports)
    placed = sum(len(i.reports) for i in aggregator.incidents)
    assert placed == len(reports)
    for incident in aggregator.incidents:
        assert incident.first_ts <= incident.last_ts
        # Adjacent reports inside an incident respect the window.
        times = sorted(r.ts for r in incident.reports)
        assert all(b - a <= 5.0 + 1e-9 for a, b in zip(times, times[1:]))
