"""Tests for GRETEL configuration math."""

from repro.core.config import GretelConfig


def test_paper_defaults_reproduce_alpha_768():
    """§7: FP_max=384, P_rate=150, t=1 → α=768, β₀=80, δ=30."""
    config = GretelConfig(p_rate=150.0, t=1.0)
    alpha = config.sliding_window_size(fp_max=384)
    assert alpha == 768
    assert config.context_buffer_start(alpha) == 76  # int(0.1 * 768)
    assert config.context_buffer_step(alpha) == 30


def test_alpha_dominated_by_fp_max():
    config = GretelConfig(p_rate=10.0, t=1.0)
    assert config.sliding_window_size(fp_max=384) == 768


def test_alpha_dominated_by_rate():
    config = GretelConfig(p_rate=1000.0, t=1.0)
    assert config.sliding_window_size(fp_max=10) == 2000


def test_alpha_override():
    config = GretelConfig(alpha=512)
    assert config.sliding_window_size(fp_max=9999) == 512


def test_fp_max_override():
    config = GretelConfig(fp_max=500, p_rate=1.0)
    assert config.sliding_window_size(fp_max=10) == 1000


def test_buffer_minimums():
    config = GretelConfig(c1=0.0001, c2=0.0001)
    assert config.context_buffer_start(10) >= 2
    assert config.context_buffer_step(10) >= 1
