"""Tests for the assembled GRETEL analyzer service."""

import pytest

from repro.openstack.cloud import Cloud
from repro.core.analyzer import GretelAnalyzer
from repro.core.config import GretelConfig
from repro.monitoring.plane import MonitoringPlane
from repro.workloads.runner import WorkloadRunner


@pytest.fixture()
def wired(small_character):
    cloud = Cloud(seed=21)
    plane = MonitoringPlane(cloud)
    analyzer = GretelAnalyzer(small_character.library, store=plane.store)
    plane.subscribe_events(analyzer.on_event)
    plane.start()
    return cloud, plane, analyzer


def find_test(suite, prefix):
    return next(t for t in suite.tests if t.name.startswith(prefix))


def test_alpha_from_config_and_library(small_character):
    analyzer = GretelAnalyzer(small_character.library,
                              config=GretelConfig(p_rate=150.0, t=1.0))
    assert analyzer.alpha == 2 * max(small_character.library.fp_max, 150)


def test_healthy_run_produces_no_reports(wired, small_suite):
    cloud, plane, analyzer = wired
    runner = WorkloadRunner(cloud)
    outcome = runner.run_isolated(find_test(small_suite, "compute.boot_server"),
                                  settle=2.0)
    analyzer.flush()
    assert outcome.ok
    assert analyzer.reports == []
    assert analyzer.events_processed > 10


def test_operational_fault_produces_report(wired, small_suite):
    cloud, plane, analyzer = wired
    cloud.faults.crash_everywhere("nova-compute")
    runner = WorkloadRunner(cloud)
    outcome = runner.run_isolated(find_test(small_suite, "compute.boot_server"),
                                  settle=2.0)
    analyzer.flush()
    assert not outcome.ok
    assert len(analyzer.operational_reports) >= 1
    report = analyzer.operational_reports[0]
    assert report.kind == "operational"
    assert report.fault_event.status >= 400
    assert report.summary()


def test_snapshot_triggers_only_on_rest_errors(wired, small_suite):
    cloud, plane, analyzer = wired
    cloud.faults.crash_everywhere("nova-compute")
    runner = WorkloadRunner(cloud)
    runner.run_isolated(find_test(small_suite, "compute.boot_server"), settle=2.0)
    analyzer.flush()
    for report in analyzer.operational_reports:
        assert report.fault_event.is_rest


def test_deferred_detection_queues_snapshots(small_character, small_suite):
    cloud = Cloud(seed=22)
    plane = MonitoringPlane(cloud)
    analyzer = GretelAnalyzer(small_character.library, store=plane.store,
                              defer_detection=True)
    plane.subscribe_events(analyzer.on_event)
    plane.start()
    cloud.faults.crash_everywhere("nova-compute")
    WorkloadRunner(cloud).run_isolated(
        find_test(small_suite, "compute.boot_server"), settle=2.0)
    analyzer.flush()
    assert analyzer.reports == []
    drained = analyzer.process_deferred()
    assert drained >= 1
    assert len(analyzer.reports) == drained


def test_report_listener_invoked(wired, small_suite):
    cloud, plane, analyzer = wired
    seen = []
    analyzer.on_report(seen.append)
    cloud.faults.crash_everywhere("nova-compute")
    WorkloadRunner(cloud).run_isolated(
        find_test(small_suite, "compute.boot_server"), settle=2.0)
    analyzer.flush()
    assert seen == analyzer.reports


def test_bytes_accounting(wired, small_suite):
    cloud, plane, analyzer = wired
    WorkloadRunner(cloud).run_isolated(
        find_test(small_suite, "misc.keypair_queries"), settle=1.0)
    assert analyzer.bytes_processed > 0
    assert analyzer.bytes_processed >= analyzer.events_processed * 100


def test_report_delay_bounded_by_window(wired, small_suite):
    cloud, plane, analyzer = wired
    cloud.faults.crash_everywhere("nova-compute")
    WorkloadRunner(cloud).run_isolated(
        find_test(small_suite, "compute.boot_server"), settle=2.0)
    analyzer.flush()
    for report in analyzer.operational_reports:
        assert report.report_delay >= 0.0
