"""Property tests: the analyzer never chokes on arbitrary streams."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.analyzer import GretelAnalyzer
from repro.core.config import GretelConfig
from repro.workloads.traffic import SyntheticStream


@pytest.fixture(scope="module")
def library(small_character):
    return small_character.library


@given(
    seed=st.integers(min_value=0, max_value=1000),
    fault_every=st.integers(min_value=5, max_value=500),
    count=st.integers(min_value=1, max_value=400),
)
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_analyzer_handles_arbitrary_streams(library, seed, fault_every, count):
    stream = SyntheticStream(library, library.symbols,
                             fault_every=fault_every, seed=seed)
    analyzer = GretelAnalyzer(
        library, config=GretelConfig(p_rate=150.0), track_latency=True,
    )
    analyzer.feed(stream.generate(count))
    analyzer.flush()
    # Invariants: every event accounted for, every report well-formed.
    assert analyzer.events_processed == count
    for report in analyzer.reports:
        assert report.kind in ("operational", "performance")
        assert 0.0 <= report.theta <= 1.0
        assert report.detection.candidates >= len(report.detection.matched)
        assert report.report_delay >= 0.0
    # Faults seen vs snapshots taken are consistent.
    assert analyzer.window.snapshots_taken + analyzer.window.pending_snapshots \
        >= len(analyzer.operational_reports)


@given(seed=st.integers(min_value=0, max_value=50))
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_deferred_equals_inline_reports(library, seed):
    """Deferring detection must not change what gets detected."""
    stream = SyntheticStream(library, library.symbols,
                             fault_every=40, seed=seed)
    events = stream.events(300)

    inline = GretelAnalyzer(library, config=GretelConfig(p_rate=150.0),
                            track_latency=False)
    inline.feed(events)
    inline.flush()

    deferred = GretelAnalyzer(library, config=GretelConfig(p_rate=150.0),
                              track_latency=False, defer_detection=True)
    deferred.feed(events)
    deferred.flush()
    deferred.process_deferred()

    assert len(inline.reports) == len(deferred.reports)
    for a, b in zip(inline.reports, deferred.reports):
        assert a.fault_event.seq == b.fault_event.seq
        assert a.detection.operations == b.detection.operations
