"""Tests for the incremental scoring engine (repro.core.matching)."""

import pytest

from repro.openstack.catalog import default_catalog
from repro.openstack.wire import WireEvent
from repro.core.config import GretelConfig
from repro.core.detector import OperationDetector, _Candidate
from repro.core.fingerprint import (
    FingerprintLibrary,
    generate_fingerprint,
    prefix_lcs_lengths,
)
from repro.core.matching import (
    MatchSession,
    MatchingStats,
    ScoringDivergence,
    SnapshotIndex,
    WindowCounts,
    select_cut,
    verify_detection,
)
from repro.core.symbols import SymbolTable
from repro.core.window import Snapshot


@pytest.fixture(scope="module")
def catalog():
    return default_catalog()


@pytest.fixture(scope="module")
def symbols(catalog):
    return SymbolTable(catalog)


# The controlled operation universe from test_detector.py.
BOOT = ("rest", "nova", "POST", "/v2.1/servers")
PORT = ("rest", "neutron", "POST", "/v2.0/ports.json")
IMAGE = ("rest", "glance", "POST", "/v2/images")
UPLOAD = ("rest", "glance", "PUT", "/v2/images/{id}/file")
VOLUME = ("rest", "cinder", "POST", "/v2/{tenant}/volumes")
POLL = ("rest", "nova", "GET", "/v2.1/servers/{id}")
DEL_SRV = ("rest", "nova", "DELETE", "/v2.1/servers/{id}")
KEYPAIR = ("rest", "nova", "POST", "/v2.1/os-keypairs")
RPC_BUILD = ("rpc", "nova", None, "build_and_run_instance")
LIST_IMAGES = ("rest", "glance", "GET", "/v2/images")


def to_keys(catalog, specs):
    keys = []
    for kind, service, method, name in specs:
        if kind == "rest":
            keys.append(catalog.find_rest(service, method, name).key)
        else:
            keys.append(catalog.find_rpc(service, name).key)
    return keys


@pytest.fixture(scope="module")
def library(catalog, symbols):
    library = FingerprintLibrary(symbols)
    operations = {
        "op-boot": [IMAGE, UPLOAD, BOOT, RPC_BUILD, PORT, POLL, DEL_SRV],
        "op-image": [IMAGE, UPLOAD, LIST_IMAGES],
        "op-volume-boot": [VOLUME, IMAGE, UPLOAD, BOOT, RPC_BUILD, PORT, POLL],
        "op-keypair-boot": [KEYPAIR, IMAGE, UPLOAD, BOOT, RPC_BUILD, PORT,
                            POLL],
        "op-reads": [LIST_IMAGES, POLL],
    }
    for name, specs in operations.items():
        library.add(generate_fingerprint(
            name, [to_keys(catalog, specs)], symbols, catalog,
        ))
    return library


def make_detector(library, symbols, catalog, **overrides):
    config = GretelConfig(**overrides)
    return OperationDetector(library, symbols, catalog, config)


def make_snapshot(catalog, specs, fault_spec, fault_status=500):
    keys = to_keys(catalog, specs)
    fault_key = to_keys(catalog, [fault_spec])[0]
    events = []
    fault_event = None
    for index, key in enumerate(keys):
        api = catalog.get(key)
        status = 200
        if key == fault_key and fault_event is None and index == len(keys) - 1:
            status = fault_status
        event = WireEvent(
            seq=index, api_key=key, kind=api.kind, method=api.method,
            name=api.name, src_service="x", src_node="ctrl", src_ip="1",
            dst_service=api.service, dst_node="nova-ctl", dst_ip="2",
            ts_request=index * 0.1, ts_response=index * 0.1 + 0.01,
            status=status,
        )
        events.append(event)
        if status >= 400:
            fault_event = event
    if fault_event is None:
        fault_event = events[-1]
    return Snapshot(fault=fault_event, events=events,
                    fault_index=events.index(fault_event))


def make_candidate(sc_symbols, cut_lengths=None, full_symbols=None,
                   pure_read=False):
    """A bare _Candidate for symbol-level engine tests."""
    return _Candidate(
        original=None,
        sc_symbols=sc_symbols,
        cut_lengths=cut_lengths or [len(sc_symbols)],
        full_symbols=full_symbols or sc_symbols,
        pure_read=pure_read,
    )


# -- snapshot index -------------------------------------------------------


def test_index_counts_symbols_inside_window():
    index = SnapshotIndex(["A", "B", "", "A", "C", "A"])
    assert index.count("A", 0, 6) == 3
    assert index.count("A", 1, 5) == 1
    assert index.count("A", 4, 4) == 0
    assert index.count("Z", 0, 6) == 0


def test_index_excludes_blank_fragments():
    index = SnapshotIndex(["", "A", ""])
    assert "" not in index.positions
    assert index.count("", 0, 3) == 0


def test_window_counts_matches_counter_semantics():
    from collections import Counter

    fragments = ["A", "B", "", "A", "C", "A", "B"]
    lo, hi = 1, 6
    counts = WindowCounts(SnapshotIndex(fragments), lo, hi)
    reference = Counter("".join(fragments[lo:hi]))
    for symbol in "ABCZ":
        assert counts.get(symbol, 0) == reference.get(symbol, 0)
        assert counts[symbol] == reference.get(symbol, 0)
    assert set(iter(counts)) == {"A", "B", "C"}
    assert len(counts) == 3


# -- multiplicity gate (satellite 1) --------------------------------------


def test_upper_bound_respects_multiplicities():
    """A needle 'AAB' must not be fully credited by a single 'A'
    (the set-intersection bound this replaced credited alphabet
    membership, not occurrences)."""
    candidate = make_candidate("AAB")
    # Set-of-symbols view: both symbols present => old bound was 1.0.
    assert candidate.alphabet == frozenset("AB")
    assert candidate.upper_bound({"A": 1, "B": 1}) == pytest.approx(2 / 3)
    assert candidate.upper_bound({"A": 2, "B": 1}) == pytest.approx(1.0)
    # Surplus buffer copies never over-credit.
    assert candidate.upper_bound({"A": 9, "B": 9}) == pytest.approx(1.0)


@pytest.mark.parametrize("needle,buffer_symbols", [
    ("AAB", "ABA"),
    ("AAB", "BBBA"),
    ("ABCABC", "CBACBA"),
    ("AAAA", "A"),
    ("AB", "A"),
    ("A", ""),
])
def test_upper_bound_is_a_true_upper_bound(needle, buffer_symbols):
    """The gate must never prune a candidate the LCS would accept:
    bound >= LCS(needle, buffer) / len(needle), always."""
    from collections import Counter

    candidate = make_candidate(needle)
    lcs = prefix_lcs_lengths(needle, buffer_symbols)[-1]
    bound = candidate.upper_bound(Counter(buffer_symbols))
    assert bound >= lcs / len(needle)


def test_upper_bound_monotone_under_buffer_growth():
    from collections import Counter

    candidate = make_candidate("AABBC")
    buffer_symbols = ""
    previous = 0.0
    for extension in ["A", "B", "Z", "A", "C", "B", "A"]:
        buffer_symbols += extension
        bound = candidate.upper_bound(Counter(buffer_symbols))
        assert bound >= previous
        previous = bound


# -- select_cut -----------------------------------------------------------


def test_select_cut_prefers_coverage_then_length():
    # cut 2 fully covered beats cut 4 at 3/4.
    assert select_cut([2, 4], {2: 2, 4: 3}) == (2, 1.0)
    # Equal coverage: the longer corroboration wins.
    assert select_cut([2, 4], {2: 1, 4: 2}) == (2, 0.5)
    # Non-positive cuts are skipped outright.
    assert select_cut([0, 3], {0: 0, 3: 2}) == (2, pytest.approx(2 / 3))
    assert select_cut([], {}) == (0, 0.0)


# -- session vs reference scorer ------------------------------------------


def snapshot_windows(snapshot, config):
    """The exact (lo, hi) schedule detect() would visit."""
    alpha = max(len(snapshot.events), 2)
    beta = max(1, config.context_buffer_start(alpha) // 2)
    delta = config.context_buffer_step(alpha)
    windows = []
    while True:
        windows.append(snapshot.bounds(beta))
        if snapshot.covers_all(beta):
            return windows
        beta += delta


def test_session_matches_reference_scorer(library, symbols, catalog):
    detector = make_detector(library, symbols, catalog)
    snapshot = make_snapshot(
        catalog,
        [KEYPAIR, LIST_IMAGES, IMAGE, VOLUME, UPLOAD, LIST_IMAGES, BOOT,
         PORT, POLL],
        POLL,
    )
    candidates = detector.candidates_for(snapshot.fault.api_key)
    session = detector.matching.session(
        detector._session_fragments(snapshot, ""),
        candidates,
        threshold=detector.config.match_coverage,
        strict=not detector.config.relaxed_match,
    )
    finalized_ref = {}
    finalized_inc = {}
    for lo, hi in snapshot_windows(snapshot, detector.config):
        reference = detector._score(
            candidates,
            detector._buffer_symbols(snapshot, lo, hi, ""),
            finalized_ref,
        )
        incremental = session.score(lo, hi, finalized_inc)
        assert incremental == reference
        assert finalized_inc == finalized_ref


def test_session_rescore_uses_cache(library, symbols, catalog):
    """Re-scoring an unchanged relevant span must answer from cache."""
    detector = make_detector(library, symbols, catalog)
    snapshot = make_snapshot(
        catalog, [KEYPAIR, IMAGE, UPLOAD, BOOT, PORT, POLL], POLL,
    )
    candidates = detector.candidates_for(snapshot.fault.api_key)
    session = detector.matching.session(
        detector._session_fragments(snapshot, ""),
        candidates,
        threshold=detector.config.match_coverage,
        strict=not detector.config.relaxed_match,
    )
    lo, hi = 0, len(snapshot.events)
    first = session.score(lo, hi)
    before = detector.matching.stats.rescore_hits
    second = session.score(lo, hi)
    assert second == first
    assert detector.matching.stats.rescore_hits > before


def test_config_flag_switches_engine_without_changing_results(
        library, symbols, catalog):
    from repro.core.matching import detection_signature

    reference = make_detector(
        library, symbols, catalog, incremental_match=False,
    )
    incremental = make_detector(
        library, symbols, catalog, incremental_match=True,
    )
    snapshot = make_snapshot(
        catalog, [KEYPAIR, IMAGE, VOLUME, UPLOAD, BOOT, PORT, POLL], POLL,
    )
    expected = detection_signature(reference.detect(snapshot))
    actual = detection_signature(incremental.detect(snapshot))
    assert actual == expected
    # The reference path never touches the engine; the incremental
    # path did real work.
    assert reference.matching.stats.lcs_row_extensions == 0
    assert incremental.matching.stats.lcs_row_extensions > 0


# -- differential oracle --------------------------------------------------


@pytest.fixture(scope="module")
def oracle_snapshots(catalog):
    return [
        make_snapshot(
            catalog, [KEYPAIR, IMAGE, UPLOAD, BOOT, PORT, POLL], POLL,
        ),
        make_snapshot(catalog, [IMAGE, UPLOAD], UPLOAD),
        make_snapshot(
            catalog, [VOLUME, IMAGE, UPLOAD, BOOT, PORT], PORT,
        ),
        make_snapshot(
            catalog,
            [KEYPAIR, LIST_IMAGES, IMAGE, VOLUME, UPLOAD, LIST_IMAGES,
             BOOT, PORT, POLL],
            POLL,
        ),
    ]


def test_verify_detection_equivalent(library, catalog, oracle_snapshots):
    outcome = verify_detection(oracle_snapshots, library, catalog=catalog)
    assert outcome.ok
    assert outcome.snapshots == len(oracle_snapshots)
    assert outcome.summary().startswith("EQUIVALENT")


def test_verify_detection_raises_on_divergence(
        library, catalog, oracle_snapshots, monkeypatch):
    """A corrupted incremental scorer must trip the oracle."""
    monkeypatch.setattr(
        MatchSession, "score",
        lambda self, lo, hi, finalized=None: {},
    )
    with pytest.raises(ScoringDivergence) as excinfo:
        verify_detection(oracle_snapshots, library, catalog=catalog)
    assert "DIVERGED" in str(excinfo.value)
    outcome = verify_detection(
        oracle_snapshots, library, catalog=catalog, strict=False,
    )
    assert not outcome.ok
    assert outcome.mismatches


def test_verify_detection_covers_performance_path(
        library, catalog, oracle_snapshots):
    outcome = verify_detection(
        oracle_snapshots, library, catalog=catalog, performance_fault=True,
    )
    assert outcome.ok


# -- stats plumbing -------------------------------------------------------


def test_matching_stats_merge():
    merged = MatchingStats(
        candidates_gated=1, blocks_built=2, lcs_row_extensions=3,
        lcs_symbols_fed=4, rescore_hits=5,
    ) + MatchingStats(
        candidates_gated=10, blocks_built=20, lcs_row_extensions=30,
        lcs_symbols_fed=40, rescore_hits=50,
    )
    assert merged == MatchingStats(
        candidates_gated=11, blocks_built=22, lcs_row_extensions=33,
        lcs_symbols_fed=44, rescore_hits=55,
    )


def test_detector_exposes_matching_stats(library, symbols, catalog):
    detector = make_detector(library, symbols, catalog)
    snapshot = make_snapshot(
        catalog, [KEYPAIR, IMAGE, UPLOAD, BOOT, PORT, POLL], POLL,
    )
    detector.detect(snapshot)
    stats = detector.matching_stats
    assert stats.lcs_symbols_fed > 0
    assert stats.lcs_row_extensions > 0
