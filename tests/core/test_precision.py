"""Tests for the θ precision metric."""

import pytest
from hypothesis import given, strategies as st

from repro.core.precision import theta


def test_perfect_precision():
    assert theta(1200, 1) == 1.0


def test_worst_precision():
    assert theta(1200, 1200) == 0.0


def test_paper_example_range():
    # n up to ~24 of 1200 still satisfies the >98% claim.
    assert theta(1200, 24) > 0.98
    assert theta(1200, 25) < 0.981


def test_zero_matches_scores_like_one():
    assert theta(1200, 0) == 1.0


def test_validation():
    with pytest.raises(ValueError):
        theta(1, 1)
    with pytest.raises(ValueError):
        theta(10, -1)


@given(st.integers(min_value=2, max_value=10_000), st.integers(min_value=0, max_value=10_000))
def test_theta_bounds(total, matched):
    matched = min(matched, total)
    value = theta(total, matched)
    assert 0.0 <= value <= 1.0


@given(st.integers(min_value=3, max_value=1000), st.integers(min_value=1, max_value=998))
def test_theta_monotone_in_matches(total, matched):
    matched = min(matched, total - 1)
    assert theta(total, matched) >= theta(total, matched + 1)
