"""Tests for the API symbol table."""

import pytest
from hypothesis import given, strategies as st

from repro.openstack.catalog import default_catalog
from repro.core.symbols import (
    PUA_BASE,
    PUA_CAPACITY,
    SymbolSpaceExhausted,
    SymbolTable,
)


@pytest.fixture(scope="module")
def table():
    return SymbolTable(default_catalog())


def test_covers_whole_catalog(table):
    assert len(table) == len(default_catalog())


def test_symbols_are_unique(table):
    catalog = default_catalog()
    symbols = {table.symbol(api.key) for api in catalog.apis}
    assert len(symbols) == len(catalog)


def test_symbols_are_single_characters(table):
    for api in default_catalog().apis[:50]:
        assert len(table.symbol(api.key)) == 1


def test_roundtrip(table):
    for api in default_catalog().apis:
        assert table.api_key(table.symbol(api.key)) == api.key


def test_encode_decode_roundtrip(table):
    keys = [api.key for api in default_catalog().apis[:20]]
    assert table.decode(table.encode(keys)) == keys


def test_encode_preserves_order_and_repeats(table):
    keys = [default_catalog().apis[0].key] * 3
    encoded = table.encode(keys)
    assert len(encoded) == 3
    assert len(set(encoded)) == 1


def test_state_change_query(table):
    post = default_catalog().find_rest("nova", "POST", "/v2.1/servers")
    get = default_catalog().find_rest("nova", "GET", "/v2.1/servers")
    assert table.is_state_change(table.symbol(post.key))
    assert not table.is_state_change(table.symbol(get.key))


def test_unknown_key_raises(table):
    with pytest.raises(KeyError):
        table.symbol("rest:nova:GET:/nope")
    with pytest.raises(KeyError):
        table.api_key("Z")


def test_contains(table):
    assert default_catalog().apis[0].key in table
    assert "bogus" not in table


def test_has_symbol_reverse_lookup(table):
    first = chr(PUA_BASE)
    assert table.has_symbol(first)
    assert not table.has_symbol("Z")


def test_items_enumerates_catalog_order(table):
    pairs = list(table.items())
    assert len(pairs) == len(default_catalog())
    assert pairs[0] == (default_catalog().apis[0].key, chr(PUA_BASE))


def test_overflowing_catalog_raises_actionable_error():
    catalog = default_catalog()
    capacity = len(catalog) - 1
    with pytest.raises(SymbolSpaceExhausted) as excinfo:
        SymbolTable(catalog, capacity=capacity)
    message = str(excinfo.value)
    # The error names both sizes and says what to do, rather than
    # silently assigning wrong chr() symbols past the range.
    assert str(len(catalog)) in message
    assert str(capacity) in message
    assert "shard" in message


def test_default_capacity_is_private_use_area(table):
    assert table.capacity == PUA_CAPACITY
    assert PUA_CAPACITY == 0xF8FF - 0xE000 + 1


def test_deterministic_across_instances():
    a = SymbolTable(default_catalog())
    b = SymbolTable(default_catalog())
    key = default_catalog().apis[100].key
    assert a.symbol(key) == b.symbol(key)


@given(st.lists(st.integers(min_value=0, max_value=642), max_size=50))
def test_encode_decode_arbitrary_sequences(indexes):
    catalog = default_catalog()
    table = SymbolTable(catalog)
    keys = [catalog.apis[i].key for i in indexes]
    assert table.decode(table.encode(keys)) == keys
