"""Picklability audit for everything the process backend ships.

The ``backend="process"`` worker protocol (repro.core.workers) moves
five kinds of values across the process boundary: the seed
(`FingerprintLibrary` + `GretelConfig` + catalog/store), chunked
`WireEvent` batches, `FaultReport` batches in replies, mergeable
`PipelineStats`, and pipeline state dicts.  These tests pin the
round-trip contract for each — not just "pickle doesn't crash" but
*behavioral* equality: an unpickled library analyzes a stream to the
same reports, and stats merged after unpickling equal stats merged
before.
"""

import pickle

import pytest

from repro.core.analyzer import GretelAnalyzer
from repro.core.config import GretelConfig
from repro.core.parallel import report_signature
from repro.core.pipeline.stages import STAT_FIELDS, PipelineStats
from repro.monitoring.store import MetadataStore
from repro.workloads.traffic import SyntheticStream


@pytest.fixture(scope="module")
def library(small_character):
    return small_character.library


def make_stream(library, fault_every=40, seed=3):
    return SyntheticStream(library, library.symbols,
                           fault_every=fault_every, seed=seed)


def roundtrip(value):
    return pickle.loads(pickle.dumps(value))


# ---------------------------------------------------------------------------
# Wire events
# ---------------------------------------------------------------------------

def test_wire_event_batch_roundtrips(library):
    events = make_stream(library).events(500)
    clones = roundtrip(events)
    assert len(clones) == len(events)
    assert clones == events
    # Field-level identity for the routing- and analysis-critical bits.
    for event, clone in zip(events[:50], clones[:50]):
        assert clone.seq == event.seq
        assert clone.src_node == event.src_node
        assert clone.api_key == event.api_key
        assert clone.status == event.status
        assert clone.to_dict() == event.to_dict()


# ---------------------------------------------------------------------------
# Config and metadata store (the worker seed)
# ---------------------------------------------------------------------------

def test_config_roundtrips(library):
    config = GretelConfig(alpha=512, p_rate=150.0,
                          indexed_selection=True)
    clone = roundtrip(config)
    assert clone == config


def test_metadata_store_roundtrips():
    store = MetadataStore()
    clone = roundtrip(store)
    assert type(clone) is MetadataStore


def test_library_roundtrip_analyzes_identically(library):
    """The seed's library must hydrate to a behaviorally identical
    analyzer in the worker — same reports, same counters."""
    events = make_stream(library, fault_every=40).events(1000)
    config = GretelConfig(p_rate=150.0)

    def run(lib):
        analyzer = GretelAnalyzer(lib, config=config,
                                  track_latency=False)
        analyzer.feed(events)
        analyzer.flush()
        return analyzer

    original = run(library)
    cloned = run(roundtrip(library))
    assert [report_signature(r) for r in cloned.reports] == \
        [report_signature(r) for r in original.reports]
    assert cloned.events_processed == original.events_processed
    assert cloned.window.snapshots_taken == \
        original.window.snapshots_taken


# ---------------------------------------------------------------------------
# Fault reports (the reply payload)
# ---------------------------------------------------------------------------

def test_fault_report_roundtrips(library):
    events = make_stream(library, fault_every=40).events(1000)
    analyzer = GretelAnalyzer(library, config=GretelConfig(p_rate=150.0),
                              track_latency=False)
    analyzer.feed(events)
    analyzer.flush()
    assert analyzer.reports, "stream must produce reports to audit"
    clones = roundtrip(analyzer.reports)
    assert [report_signature(r) for r in clones] == \
        [report_signature(r) for r in analyzer.reports]
    for report, clone in zip(analyzer.reports, clones):
        assert clone.to_dict() == report.to_dict()
        assert clone.summary() == report.summary()


# ---------------------------------------------------------------------------
# Pipeline stats (merge-after-unpickle ≡ merge-before)
# ---------------------------------------------------------------------------

def _shard_stats(library):
    events = make_stream(library, fault_every=40).events(900)
    per_shard = []
    for start in (0, 300, 600):
        analyzer = GretelAnalyzer(
            library, config=GretelConfig(p_rate=150.0),
            track_latency=False,
        )
        analyzer.feed(events[start:start + 300])
        analyzer.flush()
        per_shard.append(analyzer.stats())
    return per_shard


def test_pipeline_stats_roundtrip_preserves_merge(library):
    per_shard = _shard_stats(library)
    merged_before = PipelineStats.merged(per_shard)
    merged_after = PipelineStats.merged(
        roundtrip(s) for s in per_shard
    )
    assert merged_after == merged_before
    # The merged total itself round-trips too.
    assert roundtrip(merged_before) == merged_before
    # And every declared counter field survived (no field silently
    # dropped by __reduce__/slots drift).
    for name in STAT_FIELDS:
        assert getattr(merged_after, name) == \
            getattr(merged_before, name)
