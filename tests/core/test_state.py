"""Unit tests for the uniform state-lifecycle protocol helpers."""

import pytest

from repro.core.state import (
    StateError,
    StateFormatError,
    decode_ts,
    encode_ts,
    parse_fmt,
    require_state,
)


# ---------------------------------------------------------------------------
# parse_fmt
# ---------------------------------------------------------------------------

def test_parse_fmt_splits_layer_and_version():
    assert parse_fmt("sliding-window/v1") == ("sliding-window", 1)
    assert parse_fmt("a/v0") == ("a", 0)
    assert parse_fmt("nested/path/v12") == ("nested/path", 12)


@pytest.mark.parametrize("tag", [
    None, 7, "", "no-version", "/v1", "layer/v", "layer/vx",
    "layer/v-1", "layer/v1.5",
])
def test_parse_fmt_rejects_malformed_tags(tag):
    with pytest.raises(StateFormatError):
        parse_fmt(tag)


# ---------------------------------------------------------------------------
# require_state
# ---------------------------------------------------------------------------

def test_require_state_accepts_current_and_older_versions():
    require_state({"fmt": "layer/v2"}, "layer/v2")
    # Older persisted versions are the caller's chance to migrate.
    require_state({"fmt": "layer/v1"}, "layer/v2")


def test_require_state_refuses_newer_versions():
    with pytest.raises(StateFormatError, match="newer than supported"):
        require_state({"fmt": "layer/v3"}, "layer/v2")


def test_require_state_refuses_foreign_layers():
    with pytest.raises(StateFormatError, match="not a 'layer'"):
        require_state({"fmt": "other/v1"}, "layer/v1")


def test_require_state_refuses_missing_fmt():
    with pytest.raises(StateFormatError, match="no fmt tag"):
        require_state({}, "layer/v1")


def test_require_state_refuses_non_mapping():
    with pytest.raises(StateFormatError, match="must be a mapping"):
        require_state(["fmt"], "layer/v1")


def test_state_format_error_is_a_state_error():
    # Callers catch StateError for every restore failure; the fmt
    # subclass must stay inside that hierarchy.
    assert issubclass(StateFormatError, StateError)
    assert issubclass(StateError, ValueError)


# ---------------------------------------------------------------------------
# timestamp encoding
# ---------------------------------------------------------------------------

def test_encode_ts_maps_neg_inf_to_none():
    assert encode_ts(float("-inf")) is None
    assert encode_ts(12.5) == 12.5


def test_decode_ts_round_trips():
    for value in (float("-inf"), 0.0, -3.25, 1e12):
        assert decode_ts(encode_ts(value)) == value
