"""Shared fixtures for the streaming-service layer tests."""

import pytest

from repro.core.config import GretelConfig
from repro.workloads.traffic import SyntheticStream

#: Small α keeps snapshots cheap; the service layer's behavior does
#: not depend on window size.
CONFIG = GretelConfig(alpha=64)


@pytest.fixture(scope="module")
def library(small_character):
    return small_character.library


@pytest.fixture(scope="module")
def stream_events(library):
    """A short faulty stream (every tenant bucket gets some events)."""
    stream = SyntheticStream(
        library, library.symbols, fault_every=150, seed=3,
    )
    return stream.events(900)
