"""Tests for the durable per-tenant checkpoint store."""

import json

import pytest

from repro.core.state import StateError, StateFormatError
from repro.service import CheckpointStore

STATE = {"fmt": "tenant-session/v1", "tenant": "acme", "queue": []}


def test_save_load_round_trip(tmp_path):
    store = CheckpointStore(tmp_path)
    path = store.save("acme", STATE, seq=42)
    assert path.exists()
    assert store.load("acme") == STATE
    assert store.writes == 1
    assert store.loads == 1
    # The envelope carries the watermark for observability.
    envelope = json.loads(path.read_text())
    assert envelope["seq"] == 42
    assert envelope["fmt"] == CheckpointStore.STATE_FMT


def test_load_missing_returns_none(tmp_path):
    store = CheckpointStore(tmp_path)
    assert store.load("nobody") is None
    assert store.loads == 0


def test_save_overwrites_atomically(tmp_path):
    store = CheckpointStore(tmp_path)
    store.save("acme", dict(STATE, marker=1), seq=1)
    store.save("acme", dict(STATE, marker=2), seq=2)
    assert store.load("acme")["marker"] == 2
    # No temp files left behind.
    assert [p.name for p in tmp_path.glob("*.tmp")] == []


def test_tenant_ids_are_sanitized_into_filenames(tmp_path):
    store = CheckpointStore(tmp_path)
    path = store.path_for("cloud/eu-west 1")
    assert path.name == "cloud_eu-west_1.checkpoint.json"
    assert store.path_for("") .name == "_.checkpoint.json"


def test_colliding_sanitized_ids_fail_loudly(tmp_path):
    store = CheckpointStore(tmp_path)
    # "a/b" and "a_b" share a filename; loading the other tenant must
    # refuse rather than silently restore the wrong stream position.
    store.save("a/b", dict(STATE, tenant="a/b"), seq=1)
    assert store.path_for("a/b") == store.path_for("a_b")
    with pytest.raises(StateError, match="belongs to tenant"):
        store.load("a_b")


def test_corrupt_checkpoint_raises(tmp_path):
    store = CheckpointStore(tmp_path)
    store.path_for("acme").write_text("{not json")
    with pytest.raises(StateError, match="unreadable"):
        store.load("acme")


def test_foreign_envelope_fmt_raises(tmp_path):
    store = CheckpointStore(tmp_path)
    store.path_for("acme").write_text(
        json.dumps({"fmt": "gretel-checkpoint/v99", "tenant": "acme",
                    "seq": 0, "state": {}})
    )
    with pytest.raises(StateFormatError, match="newer"):
        store.load("acme")


def test_envelope_without_state_dict_raises(tmp_path):
    store = CheckpointStore(tmp_path)
    store.path_for("acme").write_text(
        json.dumps({"fmt": CheckpointStore.STATE_FMT, "tenant": "acme",
                    "seq": 0, "state": None})
    )
    with pytest.raises(StateError, match="no state dict"):
        store.load("acme")


def test_tenants_listing_and_delete(tmp_path):
    store = CheckpointStore(tmp_path)
    for tenant in ("beta", "alpha", "gamma"):
        store.save(tenant, dict(STATE, tenant=tenant), seq=0)
    (tmp_path / "junk.checkpoint.json").write_text("not json")
    assert store.tenants() == ["alpha", "beta", "gamma"]
    assert store.delete("beta")
    assert not store.delete("beta")
    assert store.tenants() == ["alpha", "gamma"]
