"""Tests for the bounded-queue tenant session."""

import json

import pytest

from repro.core.analyzer import GretelAnalyzer
from repro.core.state import StateError
from repro.monitoring.store import MetadataStore
from repro.service import TenantSession

from .conftest import CONFIG


def build_session(library, **kwargs):
    analyzer = GretelAnalyzer(
        library, store=MetadataStore(), config=CONFIG,
    )
    return TenantSession("acme", analyzer, **kwargs)


def test_constructor_validation(library):
    with pytest.raises(ValueError, match="queue_capacity"):
        build_session(library, queue_capacity=0)
    with pytest.raises(ValueError, match="policy"):
        build_session(library, policy="drop-newest")


def test_submit_queues_without_analyzing(library, stream_events):
    session = build_session(library, queue_capacity=100)
    for event in stream_events[:10]:
        assert session.submit(event)
    assert session.queued == 10
    assert session.events_ingested == 10
    assert session.events_analyzed == 0
    assert session.drain() == 10
    assert session.queued == 0
    assert session.events_analyzed == 10


def test_block_policy_drains_synchronously(library, stream_events):
    session = build_session(library, queue_capacity=8, policy="block")
    for event in stream_events[:20]:
        assert session.submit(event)
    # Capacity 8: submits 9 and 17 each forced a drain of 8.
    assert session.events_shed == 0
    assert session.events_analyzed == 16
    assert session.queued == 4


def test_shed_policy_drops_and_counts(library, stream_events):
    session = build_session(library, queue_capacity=8, policy="shed")
    accepted = [session.submit(e) for e in stream_events[:20]]
    assert accepted == [True] * 8 + [False] * 12
    assert session.events_shed == 12
    assert session.queued == 8
    assert session.events_ingested == 8
    # Draining frees capacity again.
    session.drain()
    assert session.submit(stream_events[20])


def test_reports_fan_out_with_tenant(library, stream_events):
    session = build_session(library)
    seen = []
    session.on_report(lambda tenant, report: seen.append(tenant))
    for event in stream_events:
        session.submit(event)
    session.flush()
    assert session.reports_emitted > 0
    assert seen == ["acme"] * session.reports_emitted


def test_retention_ring_is_bounded(library, stream_events):
    session = build_session(library, report_retention=2)
    for event in stream_events:
        session.submit(event)
    session.flush()
    assert session.reports_emitted > 2
    assert len(session.recent_reports) == 2
    # The pipeline-internal logs were handed off: bounded memory.
    assert not session.analyzer.reports
    assert not session.analyzer.pipeline.tracker.anomalies


def test_snapshot_round_trip_mid_stream(library, stream_events):
    cut = len(stream_events) // 2
    straight = build_session(library)
    straight_reports = []
    straight.on_report(lambda t, r: straight_reports.append(r))
    for event in stream_events:
        straight.submit(event)
    straight.flush()

    first = build_session(library)
    for event in stream_events[:cut]:
        first.submit(event)
    # No drain before the snapshot: the queue is part of the state.
    state = json.loads(json.dumps(first.snapshot_state()))
    assert state["queue"]

    resumed = build_session(library)
    resumed_reports = []
    resumed.on_report(lambda t, r: resumed_reports.append(r))
    resumed.restore_state(state)
    assert resumed.queued == first.queued
    for event in stream_events[cut:]:
        resumed.submit(event)
    resumed.flush()

    from repro.core.parallel import report_signature

    # The resumed session replays only the tail, so its own emit count
    # is the straight run's minus what the first half already emitted.
    assert (
        first.reports_emitted + len(resumed_reports)
        == len(straight_reports)
    )
    assert (
        [report_signature(r) for r in resumed_reports]
        == [report_signature(r)
            for r in straight_reports[first.reports_emitted:]]
    )
    assert resumed.events_ingested == straight.events_ingested
    assert resumed.events_analyzed == straight.events_analyzed


def test_restore_refuses_foreign_tenant(library):
    session = build_session(library)
    state = session.snapshot_state()
    analyzer = GretelAnalyzer(
        library, store=MetadataStore(), config=CONFIG,
    )
    other = TenantSession("umbrella", analyzer)
    with pytest.raises(StateError, match="acme"):
        other.restore_state(state)
