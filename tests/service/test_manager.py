"""Tests for the multi-tenant streaming service front door."""

import pytest

from repro.core.parallel import report_signature
from repro.service import CheckpointStore, StreamingService
from repro.service.manager import DEFAULT_TENANT

from .conftest import CONFIG


def build_service(library, **kwargs):
    return StreamingService(library, config=CONFIG, **kwargs)


def test_routes_by_event_tenant(library, stream_events):
    service = build_service(library)
    service.pump(stream_events[:40])
    # The synthetic stream stamps per-operation tenant ids.
    assert len(service.sessions) > 1
    assert set(service.sessions) == {
        e.tenant for e in stream_events[:40]
    }
    stats = service.stats()
    assert stats.events_submitted == 40
    assert stats.tenants == len(service.sessions)


def test_explicit_tenant_overrides_event_tenant(library, stream_events):
    service = build_service(library)
    service.pump(stream_events[:10], tenant="override")
    assert list(service.sessions) == ["override"]


def test_untagged_events_land_in_default_session(library, stream_events):
    from dataclasses import replace

    service = build_service(library)
    service.submit(replace(stream_events[0], tenant=""))
    assert list(service.sessions) == [DEFAULT_TENANT]


def test_checkpoint_requires_store(library, stream_events):
    service = build_service(library)
    service.submit(stream_events[0])
    with pytest.raises(ValueError, match="no checkpoint store"):
        service.checkpoint_all()


def test_checkpoint_every_validation(library):
    with pytest.raises(ValueError, match="checkpoint_every"):
        build_service(library, checkpoint_every=-1)


def test_checkpoint_unknown_tenant_raises(
    library, stream_events, tmp_path
):
    """checkpoint() must not conjure an empty session for a typo'd
    tenant — unknown tenants are a KeyError, and the session table
    stays untouched."""
    store = CheckpointStore(tmp_path)
    service = build_service(library, checkpoint_store=store)
    service.submit(stream_events[0], tenant="acme")
    service.checkpoint("acme")
    with pytest.raises(KeyError, match="unknown tenant 'ghost'"):
        service.checkpoint("ghost")
    assert list(service.sessions) == ["acme"]
    assert store.tenants() == ["acme"]


def test_stats_split_submitted_vs_accepted(library, stream_events):
    """Offers and acceptances are separate counters; shed is exactly
    their difference."""
    service = build_service(
        library, queue_capacity=8, policy="shed",
    )
    for event in stream_events[:40]:
        service.submit(event, tenant="acme")
    stats = service.stats()
    assert stats.events_submitted == 40
    assert stats.events_accepted == 8
    assert stats.events_shed == 32
    assert service.events_submitted == 40
    assert service.events_accepted == 8
    document = stats.to_dict()
    assert document["events_submitted"] == 40
    assert document["events_accepted"] == 8


def test_periodic_checkpoints_fire_per_tenant(library, stream_events, tmp_path):
    store = CheckpointStore(tmp_path)
    service = build_service(
        library, checkpoint_store=store, checkpoint_every=10,
    )
    service.pump(stream_events[:60], tenant="acme")
    assert service.checkpoints_written == 6
    assert store.tenants() == ["acme"]


def test_close_flushes_then_checkpoints(library, stream_events, tmp_path):
    store = CheckpointStore(tmp_path)
    service = build_service(library, checkpoint_store=store)
    service.pump(stream_events, tenant="acme")
    service.close()
    session = service.sessions["acme"]
    assert session.queued == 0
    assert session.events_analyzed == len(stream_events)
    state = store.load("acme")
    assert state["events_analyzed"] == len(stream_events)


def test_report_sinks_cover_current_and_future_sessions(
    library, stream_events
):
    service = build_service(library)
    seen = []
    service.pump(stream_events[:5], tenant="early")
    service.on_report(lambda tenant, report: seen.append(tenant))
    service.pump(stream_events, tenant="late")
    service.flush()
    stats = service.stats()
    assert stats.reports > 0
    assert len(seen) == stats.reports
    assert "late" in seen


def test_kill_and_resume_equals_straight_run(library, stream_events, tmp_path):
    """The service-level restart invariant: checkpoint (no flush!),
    abandon the process, start a fresh service over the same store,
    finish the stream — reports match the uninterrupted run."""
    straight = build_service(library)
    straight_reports = []
    straight.on_report(lambda t, r: straight_reports.append((t, r)))
    straight.pump(stream_events)
    straight.flush()

    cut = len(stream_events) // 2
    store = CheckpointStore(tmp_path)
    first = build_service(library, checkpoint_store=store)
    first_reports = []
    first.on_report(lambda t, r: first_reports.append((t, r)))
    first.pump(stream_events[:cut])
    # Mid-stream durability point: checkpoint *without* flushing —
    # flush() is an end-of-stream operation that would freeze pending
    # snapshots early and diverge from the straight run.
    first.checkpoint_all()

    resumed = build_service(library, checkpoint_store=store)
    resumed_reports = []
    resumed.on_report(lambda t, r: resumed_reports.append((t, r)))
    # Up-front resurrection: tenants that never reappear in the tail
    # must still finish their pending analysis at the final flush.
    assert resumed.restore_all() == len(first.sessions)
    resumed.pump(stream_events[cut:])
    resumed.flush()

    # Compare as multisets: emit order follows session-creation order,
    # which legitimately differs between a straight run (tenants in
    # first-appearance order) and a resurrected one (sorted store
    # order).  Per (tenant, signature) the diagnosis must be identical.
    combined = first_reports + resumed_reports
    assert len(combined) == len(straight_reports)
    assert (
        sorted((t, report_signature(r)) for t, r in combined)
        == sorted((t, report_signature(r)) for t, r in straight_reports)
    )
    stats = resumed.stats()
    assert stats.events_analyzed == len(stream_events)


def test_restore_false_starts_fresh(library, stream_events, tmp_path):
    store = CheckpointStore(tmp_path)
    first = build_service(library, checkpoint_store=store)
    first.pump(stream_events[:100], tenant="acme")
    first.checkpoint_all()

    fresh = build_service(
        library, checkpoint_store=store, restore=False,
    )
    fresh.pump(stream_events[100:110], tenant="acme")
    assert fresh.sessions_restored == 0
    assert fresh.sessions["acme"].events_ingested == 10


# ---------------------------------------------------------------------------
# Sharded / process-backed session analyzers
# ---------------------------------------------------------------------------

def _published(service):
    reports = []
    service.on_report(lambda tenant, report: reports.append(
        (tenant, report_signature(report))
    ))
    return reports


def test_sharded_sessions_match_serial_sessions(library, stream_events):
    serial = build_service(library)
    serial_reports = _published(serial)
    serial.pump(stream_events)
    serial.flush()

    sharded = build_service(library, shards=2)
    sharded_reports = _published(sharded)
    sharded.pump(stream_events)
    sharded.flush()

    assert sorted(sharded_reports) == sorted(serial_reports)
    assert sharded.stats().events_analyzed == \
        serial.stats().events_analyzed


def test_process_backend_sessions_match_serial(library, stream_events):
    serial = build_service(library)
    serial_reports = _published(serial)
    serial.pump(stream_events)
    serial.flush()

    service = build_service(library, shards=2, backend="process")
    process_reports = _published(service)
    try:
        service.pump(stream_events)
        service.flush()
        assert sorted(process_reports) == sorted(serial_reports)
        assert len(process_reports) > 0
        assert service.stats().events_analyzed == len(stream_events)
    finally:
        service.shutdown()
    # Shutdown is terminal for the worker pools…
    for live in service.sessions.values():
        assert all(shard.closed for shard in live.analyzer.shards)
    # …and idempotent.
    service.shutdown()


def test_process_backend_checkpoint_and_resume(
    library, stream_events, tmp_path,
):
    cut = 500
    store = CheckpointStore(tmp_path)

    first = build_service(
        library, shards=2, backend="process", checkpoint_store=store,
    )
    first_reports = _published(first)
    first.pump(stream_events[:cut])
    first.drain()
    first.shutdown()  # checkpoints, then stops the worker pools

    second = build_service(
        library, shards=2, backend="process", checkpoint_store=store,
    )
    second_reports = _published(second)
    try:
        second.pump(stream_events[cut:])
        second.flush()
    finally:
        second.shutdown()

    straight = build_service(library, shards=2)
    straight_reports = _published(straight)
    straight.pump(stream_events)
    straight.flush()

    assert sorted(first_reports + second_reports) == \
        sorted(straight_reports)


def test_service_shard_validation(library):
    with pytest.raises(ValueError, match="shards"):
        build_service(library, shards=0)
