"""Concurrency tests for the async ingest router (pump mode).

The pump router's contract (``docs/service.md``): concurrent
producers lose nothing under ``"block"``, account for everything
under ``"shed"``, checkpointing races cleanly with live pumps,
shutdown with producers still running neither deadlocks nor leaks a
pump thread, and the whole thing is observably identical to the sync
router (:func:`repro.service.verify_async` — including a negative
test proving the oracle actually trips on a tampered pump).
"""

import threading

import pytest

from repro.core.parallel import report_signature
from repro.service import (
    AsyncDivergence,
    CheckpointStore,
    StreamingService,
    verify_async,
)
from repro.service.async_oracle import bucket_tenant
from repro.service.session import TenantSession

from .conftest import CONFIG

TENANTS = 3
PRODUCERS = 4


def build_service(library, **kwargs):
    kwargs.setdefault("async_ingest", True)
    return StreamingService(library, config=CONFIG, **kwargs)


def partition(events, tenants=TENANTS):
    buckets = {}
    for event in events:
        key = bucket_tenant(event.tenant, tenants)
        buckets.setdefault(key, []).append(event)
    return buckets


def run_producers(service, jobs):
    """Drive ``submit`` from one thread per (tenant, slice) job."""
    threads = [
        threading.Thread(
            target=lambda work=work, key=key: [
                service.submit(event, tenant=key) for event in work
            ],
        )
        for key, work in jobs
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


# ---------------------------------------------------------------------------
# Pump lifecycle
# ---------------------------------------------------------------------------

def test_pump_thread_starts_and_joins(library, stream_events):
    service = build_service(library)
    service.submit(stream_events[0], tenant="acme")
    session = service.sessions["acme"]
    assert session.async_ingest
    assert session.pump_alive
    service.shutdown()
    assert not session.pump_alive
    assert session.sealed
    # Terminal and idempotent.
    service.shutdown()
    assert service.submit(stream_events[1], tenant="acme") is False


def test_sync_session_has_no_pump(library, stream_events):
    service = build_service(library, async_ingest=False)
    service.submit(stream_events[0], tenant="acme")
    session = service.sessions["acme"]
    assert not session.pump_alive
    with pytest.raises(RuntimeError, match="no pump thread"):
        session.pause()


# ---------------------------------------------------------------------------
# N producers x M tenants, both policies
# ---------------------------------------------------------------------------

def test_block_policy_concurrent_producers_lose_nothing(
    library, stream_events
):
    # A tiny queue forces real backpressure: producers must park on
    # the not-full condition and be woken by the pump.
    service = build_service(library, queue_capacity=16)
    buckets = partition(stream_events)
    for key in buckets:
        service.session(key)
    # Each tenant's stream is split across several producers —
    # disjoint slices, so per-tenant counters stay deterministic
    # even though interleaving is not.
    jobs = [
        (key, stream[lane::PRODUCERS])
        for key, stream in buckets.items()
        for lane in range(PRODUCERS)
    ]
    run_producers(service, jobs)
    service.flush()
    for key, stream in buckets.items():
        session = service.sessions[key]
        assert session.events_ingested == len(stream)
        assert session.events_analyzed == len(stream)
        assert session.events_shed == 0
        assert session.queued == 0
    stats = service.stats()
    assert stats.events_submitted == len(stream_events)
    assert stats.events_accepted == len(stream_events)
    assert stats.events_analyzed == len(stream_events)
    service.shutdown()


def test_shed_policy_concurrent_producers_account_for_everything(
    library, stream_events
):
    # Capacity 1 makes shedding near-certain, but the invariant below
    # holds at any drop rate: every offer is either accepted (and
    # eventually analyzed) or counted shed — never lost, never
    # duplicated.
    service = build_service(
        library, queue_capacity=1, policy="shed",
    )
    buckets = partition(stream_events)
    for key in buckets:
        service.session(key)
    jobs = [
        (key, stream[lane::PRODUCERS])
        for key, stream in buckets.items()
        for lane in range(PRODUCERS)
    ]
    run_producers(service, jobs)
    service.flush()
    for key, stream in buckets.items():
        session = service.sessions[key]
        offered = len(stream)
        assert session.events_ingested + session.events_shed == offered
        assert session.events_analyzed == session.events_ingested
        assert session.queued == 0
    stats = service.stats()
    assert stats.events_submitted == len(stream_events)
    assert stats.events_accepted == stats.events_analyzed
    assert (
        stats.events_accepted + stats.events_shed
        == len(stream_events)
    )
    service.shutdown()


# ---------------------------------------------------------------------------
# Checkpoint-while-pumping race
# ---------------------------------------------------------------------------

def test_checkpoint_races_cleanly_with_live_pump(
    library, stream_events, tmp_path
):
    store = CheckpointStore(tmp_path)
    service = build_service(
        library, checkpoint_store=store, queue_capacity=32,
    )
    bucket = partition(stream_events)["tenant-0"]
    service.session("acme")

    producer = threading.Thread(
        target=lambda: [
            service.submit(event, tenant="acme") for event in bucket
        ],
    )
    producer.start()
    # Snapshot repeatedly while the pump is mid-stream.  Each call
    # must park the pump at an event boundary and persist a
    # monotonically growing watermark.
    watermarks = []
    for _ in range(5):
        service.checkpoint("acme")
        watermarks.append(store.load("acme")["events_analyzed"])
    producer.join()
    service.flush()
    service.checkpoint("acme")
    assert watermarks == sorted(watermarks)
    state = store.load("acme")
    assert state["events_analyzed"] == len(bucket)
    assert state["queue"] == []
    service.shutdown()


def test_async_checkpoint_resume_matches_straight_run(
    library, stream_events, tmp_path
):
    """Kill-and-resume through the pump router replays to the same
    per-tenant reports as one uninterrupted async run.  As in the
    sync invariant: checkpoint after a *quiesce*, never a flush —
    flush is an end-of-stream operation."""
    def sink(service):
        sigs = []
        service.on_report(
            lambda t, r: sigs.append((t, report_signature(r)))
        )
        return sigs

    straight = build_service(library)
    straight_sigs = sink(straight)
    for event in stream_events:
        straight.submit(
            event, tenant=bucket_tenant(event.tenant, TENANTS)
        )
    straight.flush()
    straight.shutdown()

    cut = len(stream_events) // 2
    store = CheckpointStore(tmp_path)
    first = build_service(library, checkpoint_store=store)
    first_sigs = sink(first)
    for event in stream_events[:cut]:
        first.submit(
            event, tenant=bucket_tenant(event.tenant, TENANTS)
        )
    # Quiesce (pumps finish what was accepted, nothing is frozen),
    # persist, then kill: close the pumps without ever flushing.
    first.drain()
    first.checkpoint_all()
    for live in first.sessions.values():
        live.close()

    second = build_service(library, checkpoint_store=store)
    second_sigs = sink(second)
    assert second.restore_all() == len(first.sessions)
    for event in stream_events[cut:]:
        second.submit(
            event, tenant=bucket_tenant(event.tenant, TENANTS)
        )
    second.flush()
    combined = first_sigs + second_sigs
    assert sorted(combined) == sorted(straight_sigs)
    assert second.stats().events_analyzed == len(stream_events)
    second.shutdown()


# ---------------------------------------------------------------------------
# Shutdown with producers still running
# ---------------------------------------------------------------------------

def test_shutdown_with_live_producers_neither_deadlocks_nor_leaks(
    library, stream_events
):
    service = build_service(library, queue_capacity=8)
    buckets = partition(stream_events)
    for key in buckets:
        service.session(key)
    release = threading.Event()

    def produce(key, stream):
        # Loop the slice until sealed: submit() returning False is
        # the producer's only stop signal.
        while True:
            for event in stream:
                if not service.submit(event, tenant=key):
                    return
            release.set()

    threads = [
        threading.Thread(target=produce, args=(key, stream))
        for key, stream in buckets.items()
    ]
    for thread in threads:
        thread.start()
    release.wait(timeout=60)  # let at least one full pass land
    service.shutdown()
    for thread in threads:
        thread.join(timeout=60)
        assert not thread.is_alive()
    for live in service.sessions.values():
        assert live.sealed
        assert not live.pump_alive
        assert live.queued == 0
        # Everything accepted before the seal was still analyzed.
        assert live.events_analyzed == live.events_ingested
    service.shutdown()  # idempotent


# ---------------------------------------------------------------------------
# The differential oracle
# ---------------------------------------------------------------------------

def test_verify_async_inline_backend(library, stream_events):
    result = verify_async(
        stream_events, library,
        tenants=TENANTS, producers=2, config=CONFIG,
        queue_capacity=64,
    )
    assert result.ok
    assert result.sync_reports == result.async_reports > 0
    assert result.missing == [] and result.extra == []
    assert result.counter_diff == {}
    assert result.to_dict()["ok"] is True
    assert "EQUIVALENT" in result.summary()


def test_verify_async_process_backend(library, stream_events):
    # Pump threads driving process-backed worker pools: the pipe
    # protocol must stay per-tenant FIFO (workers.ProcessShard._io).
    result = verify_async(
        stream_events[:400], library,
        tenants=2, producers=2, config=CONFIG,
        shards=2, backend="process",
    )
    assert result.ok


def test_tampered_pump_trips_the_oracle(
    library, stream_events, monkeypatch
):
    # Swallow every claimed chunk: the pumps count the events but
    # never analyze them, so the async half emits no reports.  The
    # sync half never touches _pump_step and is unaffected.
    monkeypatch.setattr(
        TenantSession, "_pump_step", lambda self, chunk: None,
    )
    with pytest.raises(AsyncDivergence, match="DIVERGED"):
        verify_async(
            stream_events, library,
            tenants=TENANTS, producers=2, config=CONFIG,
        )


def test_verify_async_rejects_bad_arguments(library, stream_events):
    with pytest.raises(ValueError, match="tenants"):
        verify_async(stream_events, library, tenants=0, config=CONFIG)
    with pytest.raises(ValueError, match="producers"):
        verify_async(
            stream_events, library, producers=0, config=CONFIG,
        )


# ---------------------------------------------------------------------------
# Pump failure containment
# ---------------------------------------------------------------------------

def test_pump_death_seals_session_and_surfaces_on_flush(
    library, stream_events, monkeypatch
):
    def explode(self, chunk):
        raise RuntimeError("pipeline blew up")

    monkeypatch.setattr(TenantSession, "_pump_step", explode)
    service = build_service(library)
    service.submit(stream_events[0], tenant="acme")
    session = service.sessions["acme"]
    # The pump records the error, seals the door, and exits.
    session.quiesce()
    assert session.sealed
    assert service.submit(stream_events[1], tenant="acme") is False
    with pytest.raises(RuntimeError, match="pump thread died"):
        session.flush()
