"""Tests for the checkpoint differential oracle.

The oracle's own tests are mostly *negative*: an oracle that cannot
fail proves nothing, so the mutate hook injects both a counter-level
and a behavior-level corruption and the oracle must flag each.
"""

import pytest

from repro.service import CheckpointDivergence, verify_checkpoint
from repro.service.oracle import _cut_points

from .conftest import CONFIG


def test_cut_points_are_interior_and_spread():
    assert _cut_points(100, 3) == (25, 50, 75)
    assert _cut_points(10, 1) == (5,)
    # Degenerate inputs yield no cuts rather than 0/total cuts.
    assert _cut_points(1, 3) == ()
    assert _cut_points(0, 1) == ()
    assert _cut_points(100, 0) == ()
    # More cuts than interior positions: deduped, still interior.
    points = _cut_points(4, 9)
    assert all(0 < p < 4 for p in points)


def test_checkpoint_restore_is_invisible(library, stream_events):
    result = verify_checkpoint(
        stream_events, library, cuts=3, config=CONFIG,
    )
    assert result.ok
    assert result.straight_reports == result.restored_reports > 0
    assert len(result.cuts) == 3
    assert "PASS" in result.summary()
    assert result.to_dict()["ok"] is True


def test_oracle_flags_counter_corruption(library, stream_events):
    def bump_counter(state):
        state["ingest"]["events_processed"] += 7
        return state

    with pytest.raises(CheckpointDivergence, match="counter diffs"):
        verify_checkpoint(
            stream_events, library, cuts=1, config=CONFIG,
            mutate=bump_counter,
        )


def test_oracle_flags_behavioral_corruption(library, stream_events):
    def drop_pending(state):
        # Forgetting pending snapshots silently loses fault reports.
        state["window"]["pending"] = []
        return state

    result = verify_checkpoint(
        stream_events, library, cuts=3, config=CONFIG,
        mutate=drop_pending, strict=False,
    )
    assert not result.ok
    assert result.missing
    assert "FAIL" in result.summary()


def test_strict_false_returns_instead_of_raising(library, stream_events):
    def bump_counter(state):
        state["ingest"]["events_processed"] += 7
        return state

    result = verify_checkpoint(
        stream_events, library, cuts=1, config=CONFIG,
        mutate=bump_counter, strict=False,
    )
    assert not result.ok
    assert "events_processed" in result.stats_diff
