"""Tests for the operation-template framework."""

import pytest

from repro.workloads.templates import Template, all_templates, by_category


def test_all_templates_unique_names():
    names = [t.name for t in all_templates()]
    assert len(names) == len(set(names))


def test_variant_count_is_knob_product():
    template = Template(
        name="t", category="misc", script=lambda c, v: iter(()),
        knobs={"a": [1, 2], "b": [True, False, None]},
    )
    assert template.variant_count == 6


def test_variant_decoding_covers_space():
    template = Template(
        name="t", category="misc", script=lambda c, v: iter(()),
        knobs={"a": [1, 2], "b": ["x", "y", "z"]},
    )
    seen = {tuple(sorted(template.variant(i).items()))
            for i in range(template.variant_count)}
    assert len(seen) == 6


def test_negative_variant_index_rejected():
    template = Template(name="t", category="misc",
                        script=lambda c, v: iter(()), knobs={"a": [1]})
    with pytest.raises(IndexError):
        template.variant(-1)


def test_templates_have_sane_knobs():
    for template in all_templates():
        assert template.variant_count >= 1
        for knob, values in template.knobs.items():
            assert len(values) >= 1, (template.name, knob)


def test_category_partition():
    total = sum(len(by_category(c))
                for c in ("compute", "image", "network", "storage", "misc"))
    assert total == len(all_templates())


def test_compute_families_have_disjoint_style_markers():
    """Each compute scenario family fixes its style and fixture marker."""
    for template in by_category("compute"):
        assert len(template.knobs["style"]) == 1
        assert len(template.knobs["family_marker"]) == 1


def test_compute_setup_extras_are_multi_valued():
    for template in by_category("compute"):
        assert len(template.knobs["setup_extra"]) >= 6


def test_variant_space_supports_suite_targets():
    from repro.workloads.tempest import CATEGORY_COUNTS

    for category, target in CATEGORY_COUNTS.items():
        space = sum(t.variant_count for t in by_category(category))
        # Wrapping duplicates are allowed but the space should carry a
        # meaningful share of distinct variants.
        assert space >= target / 4, category
