"""Tests for the synthetic traffic generator."""

import pytest

from repro.openstack.apis import ApiKind
from repro.workloads.traffic import SyntheticStream


@pytest.fixture(scope="module")
def stream_factory(small_character):
    def make(**kwargs):
        return SyntheticStream(
            small_character.library, small_character.library.symbols, **kwargs
        )

    return make


def test_generates_requested_count(stream_factory):
    stream = stream_factory(fault_every=100)
    events = stream.events(1000)
    assert len(events) == 1000


def test_rate_controls_timestamps(stream_factory):
    stream = stream_factory(rate_pps=1000.0)
    events = stream.events(500)
    span = events[-1].ts_response - events[0].ts_response
    assert span == pytest.approx(499 / 1000.0, rel=0.01)


def test_fault_frequency(stream_factory):
    stream = stream_factory(fault_every=100)
    events = stream.events(5000)
    errors = [e for e in events if e.error]
    # Faults are skipped when the slot lands on an RPC; rate is close
    # to but never above 1/100.
    assert 20 <= len(errors) <= 50
    assert all(e.kind is ApiKind.REST for e in errors)


def test_deterministic_given_seed(stream_factory):
    a = stream_factory(seed=9).events(300)
    b = stream_factory(seed=9).events(300)
    assert [e.api_key for e in a] == [e.api_key for e in b]
    assert [e.status for e in a] == [e.status for e in b]


def test_interleaves_multiple_operations(stream_factory):
    stream = stream_factory(concurrency=20)
    events = stream.events(500)
    assert len({e.op_id for e in events}) >= 20


def test_sequence_numbers_monotone(stream_factory):
    events = stream_factory().events(200)
    seqs = [e.seq for e in events]
    assert seqs == sorted(seqs)


def test_total_bytes(stream_factory):
    stream = stream_factory()
    events = stream.events(100)
    assert stream.total_bytes(events) == sum(e.size_bytes for e in events)


def test_validation():
    import pytest as _pytest

    from repro.core.fingerprint import FingerprintLibrary
    from repro.core.symbols import SymbolTable
    from repro.openstack.catalog import default_catalog

    symbols = SymbolTable(default_catalog())
    empty = FingerprintLibrary(symbols)
    with _pytest.raises(ValueError):
        SyntheticStream(empty, symbols)
