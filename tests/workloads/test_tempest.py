"""Tests for the generated Tempest-like suite."""

import random

from repro.workloads.tempest import CATEGORY_COUNTS, TOTAL_TESTS, build_suite
from repro.workloads.templates import all_templates, by_category


def test_total_is_1200():
    assert TOTAL_TESTS == 1200
    assert len(build_suite()) == 1200


def test_category_mix_matches_table1(suite):
    for category, expected in CATEGORY_COUNTS.items():
        assert len(suite.of_category(category)) == expected


def test_test_ids_unique(suite):
    ids = [t.test_id for t in suite.tests]
    assert len(ids) == len(set(ids))


def test_build_is_deterministic():
    a = build_suite(seed=3)
    b = build_suite(seed=3)
    assert [t.test_id for t in a.tests] == [t.test_id for t in b.tests]
    assert [t.name for t in a.tests] == [t.name for t in b.tests]


def test_by_id_lookup(suite):
    test = suite.tests[17]
    assert suite.by_id(test.test_id) is test


def test_sample_respects_population(suite):
    rng = random.Random(0)
    sample = suite.sample(200, rng)
    assert len(sample) == 200
    assert all(t in suite.tests for t in sample)


def test_variants_within_template_differ(suite):
    from collections import defaultdict

    variants = defaultdict(set)
    for test in suite.tests:
        variants[test.template.name].add(tuple(sorted(test.variant.items(),
                                                      key=str)))
    # Every template contributes at least two distinct variants when it
    # appears more than twice.
    from collections import Counter

    counts = Counter(t.template.name for t in suite.tests)
    for name, count in counts.items():
        if count >= 3:
            assert len(variants[name]) >= 2, name


def test_template_variant_decoding():
    for template in all_templates():
        v0 = template.variant(0)
        assert set(v0) == set(template.knobs)
        # Index wraps modulo the variant space.
        assert template.variant(template.variant_count) == v0


def test_all_categories_have_templates():
    for category in CATEGORY_COUNTS:
        assert by_category(category), category


def test_every_template_used(suite):
    used = {t.template.name for t in suite.tests}
    assert used == {t.name for t in all_templates()}
