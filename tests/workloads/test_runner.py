"""Tests for the workload runner (isolated / concurrent / sustained)."""

import random

import pytest

from repro.openstack.cloud import Cloud
from repro.workloads.runner import WorkloadRunner


@pytest.fixture()
def cloud():
    return Cloud(seed=8)


def test_every_template_runs_green(cloud, small_suite):
    runner = WorkloadRunner(cloud)
    for test in small_suite.tests:
        outcome = runner.run_isolated(test)
        assert outcome.ok, f"{test.name}: {outcome.error}"
        assert outcome.duration > 0


def test_outcome_records_failure(cloud, small_suite):
    cloud.faults.crash_everywhere("nova-compute")
    boot = next(t for t in small_suite.tests
                if t.name.startswith("compute.boot_server"))
    outcome = WorkloadRunner(cloud).run_isolated(boot)
    assert not outcome.ok
    assert "500" in outcome.error


def test_concurrent_runs_all(cloud, suite):
    runner = WorkloadRunner(cloud)
    rng = random.Random(1)
    tests = suite.sample(30, rng)
    outcomes = runner.run_concurrent(tests, stagger=0.01)
    assert len(outcomes) == 30
    assert all(o.ok for o in outcomes)


def test_concurrent_tenants_are_isolated(cloud, suite):
    runner = WorkloadRunner(cloud)
    events = []
    cloud.taps.attach_global(events.append)
    rng = random.Random(2)
    outcomes = runner.run_concurrent(suite.sample(10, rng))
    assert all(o.ok for o in outcomes)
    tenants = {e.tenant for e in events if e.tenant.startswith("tenant-")}
    assert len(tenants) == 10


def test_sustained_keeps_load_until_deadline(cloud, small_suite):
    runner = WorkloadRunner(cloud)
    outcomes = runner.run_sustained(
        small_suite.tests, concurrency=5, duration=10.0, seed=3,
    )
    assert len(outcomes) >= 10
    assert max(o.started for o in outcomes) > 5.0


def test_interleaving_actually_happens(cloud, suite):
    """Concurrent operations' messages must interleave on the wire."""
    events = []
    cloud.taps.attach_global(events.append)
    runner = WorkloadRunner(cloud)
    rng = random.Random(3)
    compute = [t for t in suite.of_category("compute")][:10]
    runner.run_concurrent(compute, stagger=0.005)
    switches = 0
    previous = None
    for event in events:
        if event.op_id and event.op_id != previous:
            switches += 1
            previous = event.op_id
    assert switches > 20
