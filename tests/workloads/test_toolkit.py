"""Tests for the operation-scripting toolkit."""

import pytest

from repro.openstack.cloud import Cloud
from repro.openstack.config import CloudConfig
from repro.workloads.toolkit import OpenStackClient, OperationFailed


@pytest.fixture()
def client_and_cloud():
    cloud = Cloud(seed=11, config=CloudConfig(heartbeats_enabled=False))
    ctx = cloud.client_context(caller="tempest", op_id="op-test")
    return OpenStackClient(cloud, ctx), cloud


def run(cloud, generator):
    result = []

    def proc():
        value = yield from generator
        result.append(value)

    process = cloud.sim.spawn(proc())
    cloud.run_until([process])
    return result[0]


def test_create_image_returns_id(client_and_cloud):
    client, cloud = client_and_cloud
    image_id = run(cloud, client.create_image(size_gb=1.0))
    assert cloud.db.peek("glance:images", image_id)["status"] == "active"


def test_create_image_without_upload(client_and_cloud):
    client, cloud = client_and_cloud
    image_id = run(cloud, client.create_image(upload=False))
    assert cloud.db.peek("glance:images", image_id)["status"] == "queued"


def test_create_server_waits_for_active(client_and_cloud):
    client, cloud = client_and_cloud

    def scenario():
        image_id = yield from client.create_image()
        network_id = yield from client.create_network()
        server_id = yield from client.create_server(image_id, network_id)
        return server_id

    server_id = run(cloud, scenario())
    assert cloud.db.peek("nova:servers", server_id)["status"] == "ACTIVE"


def test_failed_boot_raises_operation_failed(client_and_cloud):
    client, cloud = client_and_cloud
    cloud.faults.crash_everywhere("nova-compute")

    def scenario():
        image_id = yield from client.create_image()
        yield from client.create_server(image_id)

    with pytest.raises(OperationFailed, match="500"):
        run(cloud, scenario())


def test_error_response_raises(client_and_cloud):
    client, cloud = client_and_cloud
    with pytest.raises(OperationFailed, match="404"):
        run(cloud, client.rest("glance", "GET", "/v2/images/{id}",
                               {"id": "missing"}))


def test_rest_allow_error_returns_response(client_and_cloud):
    client, cloud = client_and_cloud
    response = run(cloud, client.rest_allow_error(
        "glance", "GET", "/v2/images/{id}", {"id": "missing"}))
    assert response.status == 404


def test_delete_server_waits_without_404s(client_and_cloud):
    client, cloud = client_and_cloud
    events = []
    cloud.taps.attach_global(events.append)

    def scenario():
        image_id = yield from client.create_image()
        server_id = yield from client.create_server(image_id)
        yield from client.delete_server(server_id)

    run(cloud, scenario())
    # Routine teardown must not put REST errors on the wire.
    assert all(not e.error for e in events)


def test_volume_lifecycle(client_and_cloud):
    client, cloud = client_and_cloud

    def scenario():
        volume_id = yield from client.create_volume(size_gb=2.0)
        yield from client.delete_volume(volume_id)
        return volume_id

    volume_id = run(cloud, scenario())
    cloud.settle(1.0)
    assert cloud.db.peek("cinder:volumes", volume_id) is None


def test_attach_detach_volume(client_and_cloud):
    client, cloud = client_and_cloud

    def scenario():
        image_id = yield from client.create_image()
        server_id = yield from client.create_server(image_id)
        volume_id = yield from client.create_volume()
        yield from client.attach_volume(server_id, volume_id)
        attached = cloud.db.peek("cinder:volumes", volume_id)["status"]
        yield from client.detach_volume(server_id, volume_id)
        detached = cloud.db.peek("cinder:volumes", volume_id)["status"]
        return attached, detached

    attached, detached = run(cloud, scenario())
    assert attached == "in-use"
    assert detached == "available"


def test_wait_server_times_out_on_stuck_instance(client_and_cloud):
    """A stuck VM create (paper §8 limitation 2): polls run out."""
    client, cloud = client_and_cloud
    # Fabricate an instance that never leaves BUILD (no build cast was
    # ever published for it).
    record = {"id": "srv-stuck", "name": "x", "tenant": "op-test",
              "status": "BUILD", "node": None, "image": "i",
              "network": "n", "flavor": "f", "fault": None,
              "ports": [], "volumes": []}
    cloud.db._tables.setdefault("nova:servers", {})["srv-stuck"] = record

    with pytest.raises(OperationFailed, match="timed out"):
        run(cloud, client.wait_server("srv-stuck", "ACTIVE"))


def test_wait_volume_poll_error_raises(client_and_cloud):
    client, cloud = client_and_cloud
    cloud.faults.crash_process("cinder-node", "cinder-volume")

    def scenario():
        yield from client.create_volume()

    with pytest.raises(OperationFailed, match="500"):
        run(cloud, scenario())


def test_create_network_without_subnet(client_and_cloud):
    client, cloud = client_and_cloud
    network_id = run(cloud, client.create_network(with_subnet=False))
    assert cloud.db.count("neutron:subnets") == 0
    run(cloud, client.delete_network(network_id))
