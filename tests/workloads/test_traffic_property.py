"""Property tests for the synthetic traffic generator.

Two contracts the scenario catalog leans on:

* **determinism** — identical seed + configuration must produce
  byte-identical event streams (captures are replayable evidence);
* **fault accounting** — ``fault_slots`` documents exactly how many
  fault slots a stream opens, including the silent boundary case
  ``fault_every > length`` (zero slots, fault-free stream) that
  non-control scenarios must assert against.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.openstack.apis import ApiKind
from repro.workloads.traffic import SyntheticStream


def _stream(library, **kwargs):
    defaults = dict(fault_every=50, concurrency=8, rate_pps=10_000.0,
                    seed=0)
    defaults.update(kwargs)
    return SyntheticStream(library, library.symbols, **defaults)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16),
       count=st.integers(min_value=1, max_value=400))
def test_identical_seed_and_config_byte_identical(small_character,
                                                  seed, count):
    library = small_character.library
    first = _stream(library, seed=seed).events(count)
    second = _stream(library, seed=seed).events(count)
    # WireEvent is a frozen dataclass: == compares every field.
    assert first == second


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_different_seeds_diverge(small_character, seed):
    library = small_character.library
    first = _stream(library, seed=seed).events(200)
    second = _stream(library, seed=seed + 1).events(200)
    assert first != second


@settings(max_examples=20, deadline=None)
@given(count=st.integers(min_value=1, max_value=600),
       fault_every=st.integers(min_value=1, max_value=700))
def test_error_count_bounded_by_fault_slots(small_character, count,
                                            fault_every):
    library = small_character.library
    stream = _stream(library, fault_every=fault_every)
    events = stream.events(count)
    errors = sum(1 for e in events if e.error)
    assert errors <= stream.fault_slots(count)
    assert stream.fault_slots(count) == count // fault_every


def test_fault_every_one_errors_every_rest_event(small_character):
    library = small_character.library
    stream = _stream(library, fault_every=1)
    events = stream.events(300)
    assert stream.fault_slots(300) == 300
    rest = [e for e in events if e.kind is ApiKind.REST]
    assert rest, "stream must contain REST events"
    # Every slot fires on REST events; RPC events never carry errors.
    assert all(e.error for e in rest)
    assert not any(e.error for e in events if e.kind is ApiKind.RPC)


def test_fault_every_equal_to_length_opens_one_slot(small_character):
    library = small_character.library
    stream = _stream(library, fault_every=250)
    events = stream.events(250)
    assert stream.fault_slots(250) == 1
    # The single slot is the very last event; it fires iff REST.
    errors = [e for e in events if e.error]
    assert len(errors) <= 1
    if errors:
        assert errors[0] is events[-1]


def test_fault_every_beyond_length_is_silently_fault_free(small_character):
    """Regression: ``fault_every > len`` used to pass silently.

    The stream is legal but fault-free; ``fault_slots`` is the
    documented way to detect the vacuous configuration (scenario
    injectors assert on it, see ``repro.scenarios.base._seal``).
    """
    library = small_character.library
    stream = _stream(library, fault_every=1000)
    events = stream.events(400)
    assert stream.fault_slots(400) == 0
    assert not any(e.error for e in events)


def test_fault_every_below_one_rejected(small_character):
    library = small_character.library
    with pytest.raises(ValueError):
        _stream(library, fault_every=0)
