"""Tests for wire-trace capture and replay."""

import pytest

from repro.openstack.cloud import Cloud
from repro.openstack.config import CloudConfig
from repro.workloads.capture import (
    TraceRecorder,
    event_from_dict,
    event_to_dict,
    load_trace,
    replay,
    rescale,
)


@pytest.fixture()
def recorded(tmp_path):
    cloud = Cloud(seed=19, config=CloudConfig(heartbeats_enabled=False))
    recorder = TraceRecorder(cloud)
    ctx = cloud.client_context(op_id="trace-op")

    def op():
        yield from ctx.rest("glance", "POST", "/v2/images", {"name": "x"})
        yield from ctx.rest("glance", "GET", "/v2/images")

    process = cloud.sim.spawn(op())
    cloud.run_until([process])
    path = str(tmp_path / "trace.jsonl")
    recorder.save(path)
    return recorder, path


def test_recorder_captures_everything(recorded):
    recorder, _ = recorded
    assert len(recorder) >= 3  # auth + two calls


def test_roundtrip_preserves_events(recorded):
    recorder, path = recorded
    loaded = load_trace(path)
    assert len(loaded) == len(recorder)
    for original, clone in zip(recorder.events, loaded):
        assert clone.api_key == original.api_key
        assert clone.kind == original.kind
        assert clone.status == original.status
        assert clone.ts_response == pytest.approx(original.ts_response)
        assert clone.op_id == original.op_id
        assert clone.conn == original.conn


def test_event_dict_roundtrip(recorded):
    recorder, _ = recorded
    event = recorder.events[0]
    assert event_from_dict(event_to_dict(event)) == event


def test_rescale_preserves_latency(recorded):
    recorder, _ = recorded
    doubled = list(rescale(recorder.events, multiplier=2.0))
    for original, fast in zip(recorder.events, doubled):
        assert fast.latency == pytest.approx(original.latency)
        assert fast.ts_response == pytest.approx(original.ts_response / 2.0)


def test_rescale_validation(recorded):
    recorder, _ = recorded
    with pytest.raises(ValueError):
        list(rescale(recorder.events, multiplier=0.0))


def test_replay_into_gretel(recorded, small_character):
    from repro.core.analyzer import GretelAnalyzer
    from repro.core.config import GretelConfig

    recorder, path = recorded
    analyzer = GretelAnalyzer(small_character.library,
                              config=GretelConfig(p_rate=150.0))
    count = replay(load_trace(path), analyzer.on_event)
    assert count == len(recorder)
    assert analyzer.events_processed == count


def test_replay_faulty_trace_reproduces_detection(tmp_path, small_character,
                                                  small_suite):
    """A captured faulty run replays into the same detection offline."""
    from repro.core.analyzer import GretelAnalyzer
    from repro.core.config import GretelConfig
    from repro.workloads.runner import WorkloadRunner

    cloud = Cloud(seed=23)
    recorder = TraceRecorder(cloud)
    cloud.faults.crash_everywhere("nova-compute")
    boot = next(t for t in small_suite.tests
                if t.name.startswith("compute.boot_server"))
    WorkloadRunner(cloud).run_isolated(boot, settle=2.0)
    path = str(tmp_path / "faulty.jsonl")
    recorder.save(path)

    analyzer = GretelAnalyzer(small_character.library,
                              config=GretelConfig(p_rate=150.0),
                              track_latency=False)
    replay(load_trace(path), analyzer.on_event)
    analyzer.flush()
    assert analyzer.operational_reports
    assert analyzer.operational_reports[0].detection.matched
