"""End-to-end reproduction of the paper's case studies (§3.1, §7.2).

These run against the full 1200-operation fingerprint library (session
fixture, disk-cached) and assert the paper's narrative outcomes.
"""

import pytest

from repro.evaluation import case_studies


@pytest.fixture(scope="module")
def character(full_character):
    return full_character


def test_vm_create_no_compute(character):
    result = case_studies.vm_create_no_compute(character)
    assert result.diagnosis_correct, result.narrative
    # The dashboard error matches the paper's text verbatim.
    assert any("No valid host was found" in r.fault_event.body
               for r in result.reports)


def test_failed_image_upload(character):
    result = case_studies.failed_image_upload(character)
    assert result.diagnosis_correct, result.narrative
    report = next(r for r in result.reports if r.fault_event.status == 413)
    # The offending API is Glance's image-data PUT, as in §7.2.1.
    assert report.fault_event.name == "/v2/images/{id}/file"
    assert report.fault_event.method == "PUT"


def test_linuxbridge_failure(character):
    result = case_studies.linuxbridge_failure(character)
    assert result.diagnosis_correct, result.narrative
    causes = [c for r in result.reports for c in r.root_causes]
    assert any(c.subject == "neutron-plugin-linuxbridge-agent" for c in causes)
    # No resource anomalies: the diagnosis is purely software (§7.2.3).
    assert all(c.kind == "software" for c in causes)


def test_ntp_failure(character):
    result = case_studies.ntp_failure(character)
    assert result.diagnosis_correct, result.narrative
    causes = [c for r in result.reports for c in r.root_causes]
    ntp = [c for c in causes if c.subject == "ntp"]
    assert ntp and all(c.node == "cinder-node" for c in ntp)


@pytest.mark.slow
def test_neutron_api_latency(character):
    result = case_studies.neutron_api_latency(character)
    assert result.diagnosis_correct, result.narrative
    assert result.details["alarms"]
