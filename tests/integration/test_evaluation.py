"""Smoke tests for the evaluation harness modules (reduced scales)."""

import pytest

from repro.evaluation import fig5, fig7, fig8c, table1
from repro.evaluation.common import run_fault_workload
from repro.core.config import GretelConfig


def test_table1_rows(full_character):
    rows = table1.run(full_character)
    by_category = {r["category"]: r for r in rows}
    assert by_category["compute"]["tests"] == 517
    assert by_category["total"]["tests"] == 1200
    # Table 1's shape: Compute dominates every column.
    for other in ("image", "network", "storage", "misc"):
        assert (by_category["compute"]["avg_fp_with_rpc"]
                > by_category[other]["avg_fp_with_rpc"])
        assert (by_category["compute"]["rest_events"]
                > by_category[other]["rest_events"])
    report = table1.format_report(rows)
    assert "compute" in report and "|" in report


def test_fig5_overlap_shape(full_character):
    series = fig5.run(full_character)
    assert len(series["all"]) == fig5.REPRESENTATIVES
    # Storage/image/misc barely overlap with instance operations.
    for category in ("storage", "image", "misc"):
        values = series[category]
        assert values[len(values) // 2] < 0.20, category
    # No representative is fully contained in another category.
    assert max(series["all"]) < 0.5
    assert fig5.low_overlap_fraction(series) >= 0.0
    assert fig5.paper_scale_projection(full_character, series) > 0.85


def test_fig7_precision_cell(full_character):
    """One grid cell at reduced scale: θ must clear the paper's bar."""
    stats = run_fault_workload(
        concurrency=100, n_faults=8, character=full_character, seed=3,
        config=GretelConfig(p_rate=1300.0),
    )
    assert stats.injected == 8
    assert stats.mean_theta() > 0.97
    # Fig. 7b's shape: snapshot matching narrows far below the
    # API-error-only candidate set.
    assert stats.mean_matched() < stats.mean_candidates() / 3
    assert stats.max_report_delay() < 2.0


def test_fig8c_throughput_shape(full_character):
    points = fig8c.run(full_character, fault_frequencies=(100, 2000),
                       events_per_point=20_000)
    frequent, rare = points
    # Rarer faults → higher effective throughput (the Fig. 8c shape).
    assert rare.gretel_effective_eps > frequent.gretel_effective_eps
    # GRETEL's ingest path beats HANSEL's per-message stitching.
    assert rare.gretel_ingest_eps > rare.hansel_eps
    assert frequent.snapshots > rare.snapshots
    report = fig8c.format_report(points)
    assert "HANSEL" in report


def test_suite_covers_only_subset_of_public_apis(full_character):
    """§7.1's limitation: Tempest exercises only a subset of the 643
    public APIs, so characterization cannot fingerprint everything."""
    from repro.openstack.catalog import PUBLIC_REST_API_COUNT, default_catalog

    catalog = default_catalog()
    used = set()
    for stats in full_character.stats.values():
        used |= stats.unique_rest
    rest_used = [k for k in used if catalog.get(k).kind.value == "rest"]
    assert len(rest_used) < PUBLIC_REST_API_COUNT
    # A meaningful chunk is exercised nonetheless.
    assert len(rest_used) > 100


def test_alpha_scales_with_paper_formula(full_character):
    """α = 2·max{FP_max, P_rate·t} responds to both drivers."""
    from repro.core.analyzer import GretelAnalyzer
    from repro.core.config import GretelConfig

    slow = GretelAnalyzer(full_character.library,
                          config=GretelConfig(p_rate=10.0))
    fast = GretelAnalyzer(full_character.library,
                          config=GretelConfig(p_rate=5000.0))
    assert slow.alpha == 2 * full_character.library.fp_max
    assert fast.alpha == 10_000
