"""Smoke tests: every example script runs green end to end."""

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "..", "examples")


def run_example(name, timeout=600):
    # The session fixture has already warmed the characterization cache.
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, name)],
        capture_output=True, text=True, timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart(full_character):
    out = run_example("quickstart.py")
    assert "Root cause (dead L2 agent) localized: True" in out


def test_dependency_failures(full_character):
    out = run_example("dependency_failures.py")
    assert "[PASS] failed_image_upload" in out
    assert "[PASS] ntp_failure" in out


def test_incident_export(full_character):
    out = run_example("incident_export.py")
    assert "Exported 2 incident(s)" in out


def test_parallel_fault_localization(full_character):
    out = run_example("parallel_fault_localization.py")
    assert "--- GRETEL (4-shard) ---" in out
    assert "ground-truth operation in set: True" in out
    assert "EQUIVALENT" in out  # the serial-vs-sharded oracle


@pytest.mark.slow
def test_performance_bottleneck(full_character):
    out = run_example("performance_bottleneck.py")
    assert "Level-shift alarms" in out


@pytest.mark.slow
def test_throughput_stress(full_character):
    out = run_example("throughput_stress.py")
    assert "HANSEL" in out
