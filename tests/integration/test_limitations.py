"""The paper's §8 limitations, reproduced.

A faithful reproduction fails exactly where the original says it
fails.  Each test here demonstrates one documented limitation.
"""

import pytest

from repro.openstack.cloud import Cloud
from repro.core.analyzer import GretelAnalyzer
from repro.core.config import GretelConfig
from repro.monitoring.plane import MonitoringPlane
from repro.workloads.runner import WorkloadRunner


def wire(character, seed=71, **config_kw):
    cloud = Cloud(seed=seed)
    plane = MonitoringPlane(cloud)
    analyzer = GretelAnalyzer(
        character.library, store=plane.store,
        config=GretelConfig(p_rate=150.0, **config_kw), track_latency=False,
    )
    plane.subscribe_events(analyzer.on_event)
    plane.start()
    return cloud, plane, analyzer


def test_limitation_2_no_error_message_no_detection(full_character, suite):
    """§8(2): faults that produce no REST/RPC error are invisible.

    A crashed cinder-volume backend leaves the volume stuck in
    'creating': as long as nobody polls it into a 500, GRETEL has no
    fault to trigger on.
    """
    cloud, plane, analyzer = wire(full_character)
    cloud.faults.crash_process("cinder-node", "cinder-volume")
    ctx = cloud.client_context(op_id="stuck")

    def create_without_polling():
        response = yield from ctx.rest("cinder", "POST", "/v2/{tenant}/volumes",
                                       {"size_gb": 1.0})
        return response

    process = cloud.sim.spawn(create_without_polling())
    cloud.run_until([process])
    cloud.settle(5.0)
    analyzer.flush()
    # The volume is stuck in error state server-side...
    volumes = [v for v in cloud.db._tables.get("cinder:volumes", {}).values()]
    assert volumes and volumes[0]["status"] == "error"
    # ...but no error ever crossed the wire, so GRETEL saw nothing.
    assert analyzer.operational_reports == []


def test_limitation_4_unfingerprinted_operations_unmatched(full_character):
    """§8(4): operations outside the characterized suite can be
    detected as faults but not *named*."""
    cloud, plane, analyzer = wire(full_character)
    ctx = cloud.client_context(op_id="novel-op")
    # A hand-rolled operation no Tempest-like test performs: failing
    # POST on an API that appears in no fingerprint.
    api_key = "rest:nova:POST:/v2.1/os-console-auth-tokens"
    assert not full_character.library.ops_containing(
        full_character.library.symbols.symbol(api_key)
    )
    cloud.faults.inject_api_error(api_key, 500, "console backend down", count=1)

    def novel_operation():
        yield from ctx.rest("nova", "POST", "/v2.1/os-console-auth-tokens", {})

    process = cloud.sim.spawn(novel_operation())
    cloud.run_until([process])
    cloud.settle(1.0)  # let the tap forward the captured events
    analyzer.flush()
    assert len(analyzer.operational_reports) == 1
    report = analyzer.operational_reports[0]
    # Fault detected, but zero candidates and no operation named.
    assert report.detection.candidates == 0
    assert report.detection.matched == []


def test_limitation_1_small_window_misses_context(full_character, suite):
    """§8(1): accuracy is contingent on the window's message context —
    a tiny sliding window yields snapshots whose fingerprint parts
    have scrolled away."""
    import random

    from repro.evaluation.common import run_fault_workload

    stats = run_fault_workload(
        concurrency=100, n_faults=8, character=full_character, seed=3,
        config=GretelConfig(alpha=60, p_rate=150.0),
    )
    # Under a 60-message window some faults find no matching operation.
    assert any(n == 0 for n in stats.matched_counts())


def test_limitation_7_new_operations_need_new_fingerprints(full_character):
    """§8(7): an operation type added after characterization has no
    fingerprint until re-characterized (here: the library simply has
    no entry for a made-up operation name)."""
    with pytest.raises(KeyError):
        full_character.library.get("tempest-compute-9999")
