"""Cross-module integration tests: workloads → monitoring → GRETEL."""

import random

import pytest

from repro.openstack.cloud import Cloud
from repro.core.analyzer import GretelAnalyzer
from repro.core.config import GretelConfig
from repro.baselines.hansel import HanselAnalyzer
from repro.baselines.loganalysis import LogAnalysisBaseline
from repro.monitoring.plane import MonitoringPlane
from repro.workloads.runner import WorkloadRunner


def wire(character, seed=31, p_rate=1300.0, track_latency=False):
    cloud = Cloud(seed=seed)
    plane = MonitoringPlane(cloud)
    analyzer = GretelAnalyzer(
        character.library, store=plane.store,
        config=GretelConfig(p_rate=p_rate), track_latency=track_latency,
    )
    plane.subscribe_events(analyzer.on_event)
    plane.start()
    return cloud, plane, analyzer


def test_injected_fault_detected_in_concurrent_mix(full_character, suite):
    cloud, plane, analyzer = wire(full_character)
    rng = random.Random(12)
    mix = suite.sample(60, rng)
    faulty = next(t for t in suite.tests
                  if t.name.startswith("compute.snapshot_server"))
    cloud.faults.inject_api_error(
        "rest:nova:POST:/v2.1/servers/{id}/action#createImage",
        500, "snapshot failed", count=1, op_id=faulty.test_id,
    )
    outcomes = WorkloadRunner(cloud).run_concurrent(mix + [faulty],
                                                    stagger=0.01, settle=2.0)
    analyzer.flush()

    failed = [o for o in outcomes if not o.ok]
    assert [o.test_id for o in failed] == [faulty.test_id]
    assert analyzer.operational_reports
    report = analyzer.operational_reports[0]
    assert report.theta > 0.95
    assert faulty.test_id in report.detection.operations


def test_gretel_reports_operation_hansel_reports_chain(full_character, suite):
    """§9.2's qualitative comparison on identical traffic."""
    cloud, plane, analyzer = wire(full_character)
    hansel = HanselAnalyzer()
    cloud.taps.attach_global(hansel.on_event)
    boot = next(t for t in suite.tests if t.name.startswith("compute.boot_server"))
    cloud.faults.crash_everywhere("nova-compute")
    WorkloadRunner(cloud).run_isolated(boot, settle=2.0)
    analyzer.flush()
    hansel.flush()

    gretel_report = analyzer.operational_reports[0]
    hansel_report = hansel.reports[0]
    # GRETEL names high-level administrative operations...
    assert gretel_report.detection.operations
    # ...and root causes; HANSEL offers neither, only the message chain.
    assert gretel_report.root_causes
    assert hansel_report.chain_length >= 3
    # HANSEL's reporting waits out the 30 s bucket; GRETEL needs only
    # the α/2 future fill (<2 s even at 400 ops, per §7.4.1).
    assert hansel_report.reporting_latency >= 30.0
    assert gretel_report.report_delay < 2.0


def test_log_analysis_misses_what_gretel_finds(full_character, suite):
    cloud, plane, analyzer = wire(full_character)
    events = []
    cloud.taps.attach_global(events.append)
    cloud.faults.crash_everywhere("nova-compute")
    boot = next(t for t in suite.tests if t.name.startswith("compute.boot_server"))
    WorkloadRunner(cloud).run_isolated(boot, settle=2.0)
    analyzer.flush()

    logs = LogAnalysisBaseline()
    logs.ingest(events)
    # §3.1.1: nothing at ERROR level; GRETEL still localizes the cause.
    assert not logs.diagnose("ERROR")["found_anything"]
    assert logs.diagnose("WARNING")["found_anything"]
    causes = [c for r in analyzer.reports for c in r.root_causes]
    assert any(c.subject == "nova-compute" for c in causes)


def test_multiple_faults_produce_multiple_reports(full_character, suite):
    cloud, plane, analyzer = wire(full_character)
    rng = random.Random(5)
    mix = suite.sample(40, rng)
    faulty = [t for t in suite.tests
              if t.name.startswith("compute.rename_server")][:3]
    for test in faulty:
        cloud.faults.inject_api_error(
            "rest:nova:PUT:/v2.1/servers/{id}", 500, "rename failed",
            count=1, op_id=test.test_id,
        )
    outcomes = WorkloadRunner(cloud).run_concurrent(mix + faulty,
                                                    stagger=0.01, settle=2.0)
    analyzer.flush()
    assert sum(1 for o in outcomes if not o.ok) == 3
    assert len(analyzer.operational_reports) >= 3


def test_performance_and_operational_paths_coexist(full_character, suite):
    cloud, plane, analyzer = wire(full_character, track_latency=True,
                                  p_rate=400.0)
    cloud.faults.cpu_surge("neutron-ctl", 0.7, start=8.0, end=30.0)
    runner = WorkloadRunner(cloud)
    # Mostly healthy load (drives the latency detectors) with one
    # operational fault injected mid-run.
    faulty = next(t for t in suite.tests
                  if t.name.startswith("compute.rename_server"))
    cloud.faults.inject_api_error(
        "rest:nova:PUT:/v2.1/servers/{id}", 500, "rename failed",
        count=1, op_id=faulty.test_id,
    )
    processes = [cloud.sim.spawn(runner._staggered(10.0, faulty, []),
                                 name="faulty")]
    outcomes = runner.run_sustained(suite.tests[:200], concurrency=30,
                                    duration=30.0, seed=7)
    cloud.run_until(processes, limit=60.0)
    analyzer.flush()
    assert outcomes
    assert analyzer.operational_reports
    # CPU-surge-driven level shifts produce performance reports.
    assert analyzer.performance_reports
