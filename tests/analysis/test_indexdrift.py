"""Index-drift pass: stale, corrupted, and mismatched artifacts."""

from repro.analysis import indexdrift
from repro.analysis.compile import (
    FORMAT_VERSION,
    CompiledIndex,
    compile_library,
)
from repro.core.config import GretelConfig


def _rules(findings):
    return [f.rule for f in findings]


def _fingerprints(make_fingerprint, state_change_keys, count=4):
    return [
        make_fingerprint(f"op-{i}", state_change_keys[i:i + 3])
        for i in range(count)
    ]


def test_fresh_index_self_check_is_clean(
    make_fingerprint, make_context, state_change_keys
):
    # No artifact on the context: the pass compiles one and checks
    # the compiler against the library's own inverted index.
    ctx = make_context(_fingerprints(make_fingerprint, state_change_keys))
    assert indexdrift.run(ctx) == []


def test_stale_library_is_idx001(
    make_fingerprint, make_context, state_change_keys
):
    fps = _fingerprints(make_fingerprint, state_change_keys)
    index = compile_library(make_context(fps).library)
    grown = fps + [make_fingerprint("op-late", state_change_keys[:5])]
    findings = indexdrift.run(make_context(grown, compiled_index=index))
    assert _rules(findings) == ["IDX001"]
    assert findings[0].severity.name == "ERROR"
    assert "library hash mismatch" in findings[0].message


def test_reassigned_symbol_table_is_idx002(
    make_fingerprint, make_context, state_change_keys
):
    fps = _fingerprints(make_fingerprint, state_change_keys)
    ctx = make_context(fps)
    index = compile_library(ctx.library)
    index.symbols_hash = "0" * 64
    findings = indexdrift.run(make_context(fps, compiled_index=index))
    assert _rules(findings) == ["IDX002"]
    assert "symbol-table hash mismatch" in findings[0].message


def test_structural_corruption_is_idx003(
    make_fingerprint, make_context, state_change_keys
):
    fps = _fingerprints(make_fingerprint, state_change_keys)
    ctx = make_context(fps)
    payload = compile_library(ctx.library).to_dict()
    del payload["postings"][sorted(payload["postings"])[0]]
    corrupted = CompiledIndex.from_dict(payload)
    findings = indexdrift.run(make_context(fps, compiled_index=corrupted))
    assert _rules(findings) == ["IDX003"]
    assert "structural drift" in findings[0].message


def test_flag_mismatch_is_idx004_warning(
    make_fingerprint, make_context, state_change_keys
):
    fps = _fingerprints(make_fingerprint, state_change_keys)
    ctx = make_context(fps)
    stale_flags = GretelConfig(relaxed_match=False)
    index = compile_library(ctx.library, config=stale_flags)
    findings = indexdrift.run(make_context(fps, compiled_index=index))
    assert _rules(findings) == ["IDX004"]
    assert findings[0].severity.name == "WARNING"
    assert "full scan" in findings[0].message


def test_foreign_format_version_is_idx005(
    make_fingerprint, make_context, state_change_keys
):
    fps = _fingerprints(make_fingerprint, state_change_keys)
    ctx = make_context(fps)
    index = compile_library(ctx.library)
    index.format_version = FORMAT_VERSION + 1
    findings = indexdrift.run(make_context(fps, compiled_index=index))
    assert _rules(findings) == ["IDX005"]
