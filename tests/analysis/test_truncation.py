"""Truncation pass: reachability of truncate-at-last-occurrence cuts."""

from repro.analysis import truncation


def _rules(findings):
    return [f.rule for f in findings]


def test_read_before_any_state_change_is_degenerate(
    make_fingerprint, make_context, state_change_keys, read_keys
):
    # read, read, write, write: truncating at either read leaves a
    # reads-only prefix.
    keys = read_keys[:2] + state_change_keys[:2]
    fp = make_fingerprint("op", keys)
    findings = truncation.run(make_context([fp]))
    trn1 = [f for f in findings if f.rule == "TRN001"]
    assert len(trn1) == 1
    assert "2 of" in trn1[0].message
    assert "op" in trn1[0].witness


def test_read_recurring_after_state_change_is_reachable(
    make_fingerprint, make_context, state_change_keys, read_keys
):
    # read, write, read(same), write: the read's *last* occurrence sits
    # after a state change, so its truncation prefix is sound.
    keys = [read_keys[0], state_change_keys[0], read_keys[0],
            state_change_keys[1]]
    fp = make_fingerprint("op", keys)
    findings = truncation.run(make_context([fp]))
    assert "TRN001" not in _rules(findings)


def test_single_literal_first_cut_reported(
    make_fingerprint, make_context, state_change_keys, read_keys
):
    keys = [state_change_keys[0], read_keys[0], state_change_keys[1]]
    fp = make_fingerprint("op", keys)
    findings = truncation.run(make_context([fp]))
    assert "TRN002" in _rules(findings)


def test_repeated_first_literal_not_single(
    make_fingerprint, make_context, state_change_keys
):
    # write-a, write-b, write-a: truncating at a's last occurrence
    # keeps three literals.
    keys = [state_change_keys[0], state_change_keys[1], state_change_keys[0]]
    fp = make_fingerprint("op", keys)
    assert "TRN002" not in _rules(truncation.run(make_context([fp])))


def test_pure_read_fingerprints_skipped(
    make_fingerprint, make_context, read_keys
):
    fp = make_fingerprint("op", read_keys[:3])
    assert truncation.run(make_context([fp])) == []


def test_identical_shapes_aggregate_into_one_finding(
    make_fingerprint, make_context, state_change_keys, read_keys
):
    keys = read_keys[:1] + state_change_keys[:1]
    fps = [make_fingerprint(f"op-{i}", keys) for i in range(5)]
    findings = [f for f in truncation.run(make_context(fps))
                if f.rule == "TRN001"]
    assert len(findings) == 1
    assert "5 operation(s)" in findings[0].message
