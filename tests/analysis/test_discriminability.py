"""Discriminability pass: anchorless fingerprints and hot symbols."""

from repro.analysis import discriminability


def _rules(findings):
    return [f.rule for f in findings]


def _identical(make_fingerprint, state_change_keys, count):
    """``count`` operations stamped from one symbol shape."""
    keys = state_change_keys[:3]
    return [
        make_fingerprint(f"op-{i:02d}", keys) for i in range(count)
    ]


def test_anchorless_shape_reported_once(
    make_fingerprint, make_context, state_change_keys
):
    # 16 identical fingerprints: every symbol is in 16/16 of the
    # library, so even the rarest is no anchor.  One shape → one
    # DSC001, not sixteen.
    fps = _identical(make_fingerprint, state_change_keys, 16)
    findings = discriminability.run(make_context(fps))
    dsc001 = [f for f in findings if f.rule == "DSC001"]
    assert len(dsc001) == 1
    assert dsc001[0].location == "fingerprint:op-00"
    assert "16/16" in dsc001[0].message
    assert "rarest symbol:" in dsc001[0].witness


def test_hot_symbols_reported_per_symbol(
    make_fingerprint, make_context, state_change_keys
):
    fps = _identical(make_fingerprint, state_change_keys, 16)
    findings = discriminability.run(make_context(fps))
    dsc002 = [f for f in findings if f.rule == "DSC002"]
    # All three shared symbols cover 100% ≥ the 50% hot threshold.
    assert len(dsc002) == 3
    assert all(f.location.startswith("symbol:U+") for f in dsc002)


def test_distinct_anchors_are_clean(
    make_fingerprint, make_context, state_change_keys, read_keys
):
    # Each operation has its own rare symbol (1/16 share) and no
    # symbol is shared by ≥50% of the library.
    pool = (state_change_keys + read_keys)[:16]
    assert len(pool) == 16
    fps = [
        make_fingerprint(f"op-{i:02d}", [key])
        for i, key in enumerate(pool)
    ]
    assert discriminability.run(make_context(fps)) == []


def test_small_libraries_are_skipped(
    make_fingerprint, make_context, state_change_keys
):
    # The same pathological shape below anchor_min_library: shares
    # carry no signal at this size, so the pass stays silent.
    fps = _identical(make_fingerprint, state_change_keys, 4)
    assert discriminability.run(make_context(fps)) == []


def test_thresholds_are_tunable(
    make_fingerprint, make_context, state_change_keys
):
    fps = _identical(make_fingerprint, state_change_keys, 16)
    quiet = make_context(fps, anchor_share=1.0, hot_symbol_share=1.1)
    assert discriminability.run(quiet) == []
    eager = make_context(fps, anchor_min_library=4)
    assert "DSC001" in _rules(discriminability.run(eager))
