"""Ambiguity pass: equal and subsumed state-change sequences."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis import ambiguity


def _rules(findings):
    return [f.rule for f in findings]


def test_deliberately_ambiguous_pair_is_flagged(
    make_fingerprint, make_context, state_change_keys
):
    short = make_fingerprint("op-short", state_change_keys[:3])
    long_ = make_fingerprint("op-long", state_change_keys[:6])
    findings = ambiguity.run(make_context([short, long_]))
    assert "AMB002" in _rules(findings)
    subsumption = next(f for f in findings if f.rule == "AMB002")
    assert subsumption.location == "fingerprint:op-short"
    assert "op-long" in subsumption.witness
    # Witnesses are decoded to human-readable API names, not symbols.
    assert any(w.startswith(("POST", "PUT", "DELETE", "rpc"))
               for w in subsumption.witness)


def test_identical_sequences_flagged_across_groups(
    make_fingerprint, make_context, state_change_keys
):
    a = make_fingerprint("op-a", state_change_keys[:4])
    b = make_fingerprint("op-b", state_change_keys[:4])
    findings = ambiguity.run(make_context([a, b]))
    assert _rules(findings) == ["AMB001"]


def test_same_group_ambiguity_suppressed(
    make_fingerprint, make_context, state_change_keys
):
    a = make_fingerprint("op-a", state_change_keys[:4])
    b = make_fingerprint("op-b", state_change_keys[:4])
    c = make_fingerprint("op-c", state_change_keys[:8])
    ctx = make_context(
        [a, b, c],
        operation_groups={"op-a": "tmpl", "op-b": "tmpl", "op-c": "tmpl"},
    )
    assert ambiguity.run(ctx) == []


def test_distinct_sequences_are_clean(
    make_fingerprint, make_context, state_change_keys
):
    # Disjoint alphabets: neither subsumes the other.
    a = make_fingerprint("op-a", state_change_keys[:4])
    b = make_fingerprint("op-b", state_change_keys[4:8])
    assert ambiguity.run(make_context([a, b])) == []


def test_is_subsequence():
    assert ambiguity.is_subsequence("", "abc")
    assert ambiguity.is_subsequence("ac", "abc")
    assert not ambiguity.is_subsequence("ca", "abc")
    assert not ambiguity.is_subsequence("abcd", "abc")


# The builder fixtures are stateless factories, so reuse across
# generated examples is safe.
@settings(suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(data=st.data())
def test_any_embedded_subsequence_is_flagged(
    data, make_fingerprint, make_context, state_change_keys
):
    """Property: a fingerprint built by sampling a proper subsequence of
    another's APIs is always reported by the subsumption rule."""
    pool = state_change_keys[:12]
    long_keys = data.draw(
        st.lists(st.sampled_from(pool), min_size=3, max_size=10)
    )
    indexes = data.draw(
        st.lists(
            st.integers(0, len(long_keys) - 1),
            min_size=1, max_size=len(long_keys) - 1, unique=True,
        )
    )
    short_keys = [long_keys[i] for i in sorted(indexes)]
    long_fp = make_fingerprint("op-long", long_keys)
    short_fp = make_fingerprint("op-short", short_keys)
    if short_fp.state_change_symbols == long_fp.state_change_symbols:
        return  # equal, not proper subsumption: AMB001 territory
    findings = ambiguity.run(make_context([long_fp, short_fp]))
    assert "AMB002" in _rules(findings)
