"""Library compiler: artifact shape, determinism, and the oracle."""

import json

import pytest

from repro.analysis.compile import (
    FORMAT_VERSION,
    CompiledIndex,
    SelectionDivergence,
    candidate_signature,
    compile_library,
    compiled_index_for,
    library_hash,
    selection_flags,
    symbol_table_hash,
    verify_selection,
    _min_feasible_overlap,
)
from repro.core.config import GretelConfig
from repro.core.detector import OperationDetector
from repro.core.fingerprint import FingerprintLibrary


@pytest.fixture()
def library(make_fingerprint, symbols, state_change_keys, read_keys):
    """A small mixed library: shared + distinctive symbols."""
    lib = FingerprintLibrary(symbols)
    shared = state_change_keys[:2]
    for i in range(6):
        keys = shared + [state_change_keys[2 + i], read_keys[i]]
        lib.add(make_fingerprint(f"op-{i}", keys))
    # One duplicated shape (the compiler's dedup unit).
    lib.add(make_fingerprint("op-clone", shared + [state_change_keys[2],
                                                  read_keys[0]]))
    return lib


def test_postings_mirror_the_library(library):
    index = compile_library(library)
    assert index.postings() == library.postings()
    # Every symbol of every fingerprint is indexed, postings sorted
    # by operation name (the ops_containing contract).
    for operation in library.operations():
        for symbol in set(library.get(operation).symbols):
            entry = index.entry_for(symbol)
            assert entry is not None
            assert operation in entry.operations
            assert list(entry.operations) == sorted(entry.operations)


def test_build_twice_is_byte_identical(library):
    first = compile_library(library)
    second = compile_library(library)
    assert first.to_json() == second.to_json()
    assert first.artifact_hash() == second.artifact_hash()


def test_round_trip_through_json(library):
    index = compile_library(library)
    rebuilt = CompiledIndex.from_dict(json.loads(index.to_json()))
    assert rebuilt.to_json() == index.to_json()
    assert rebuilt.artifact_hash() == index.artifact_hash()


def test_from_dict_rejects_foreign_format_version(library):
    payload = compile_library(library).to_dict()
    payload["format_version"] = FORMAT_VERSION + 1
    with pytest.raises(ValueError, match="format version"):
        CompiledIndex.from_dict(payload)


def test_hashes_are_sensitive_to_library_changes(
    library, make_fingerprint, symbols, state_change_keys
):
    index = compile_library(library)
    before = library_hash(library)
    assert index.library_hash == before
    assert index.symbols_hash == symbol_table_hash(symbols)
    assert index.verify_against(library, symbols) == []

    library.add(make_fingerprint("op-new", state_change_keys[:3]))
    assert library_hash(library) != before
    problems = index.verify_against(library, symbols)
    assert len(problems) == 1
    assert "library hash mismatch" in problems[0]


def test_check_postings_catches_structural_corruption(library):
    index = compile_library(library)
    assert index.check_postings(library) == []
    payload = index.to_dict()
    dropped = sorted(payload["postings"])[0]
    del payload["postings"][dropped]
    corrupted = CompiledIndex.from_dict(payload)
    # The copied hashes still match: only the structural check sees it.
    assert corrupted.verify_against(library, library.symbols) == []
    problems = corrupted.check_postings(library)
    assert any("no postings entry" in p for p in problems)


def test_serves_requires_matching_selection_flags(library):
    config = GretelConfig()
    index = compile_library(library, config=config)
    assert index.serves(config)
    assert index.flags == selection_flags(config)
    flipped = GretelConfig(relaxed_match=not config.relaxed_match)
    assert not index.serves(flipped)


def test_memoized_compile_tracks_library_version(
    library, make_fingerprint, state_change_keys
):
    first = compiled_index_for(library)
    assert compiled_index_for(library) is first
    library.add(make_fingerprint("op-extra", state_change_keys[:4]))
    second = compiled_index_for(library)
    assert second is not first
    assert second.verify_against(library, library.symbols) == []


def test_facts_record_anchors_and_feasibility(library):
    index = compile_library(library)
    postings = library.postings()
    for operation in library.operations():
        facts = index.facts[operation]
        distinct = set(library.get(operation).symbols)
        lengths = [len(postings[s]) for s in distinct]
        assert facts.min_postings == min(lengths)
        assert facts.max_postings == max(lengths)
        assert facts.distinct_symbols == len(distinct)
        for anchor in facts.anchor_symbols:
            assert len(postings[anchor]) == facts.min_postings
        for cut, needed in facts.min_feasible:
            assert 0 <= needed <= cut


def test_min_feasible_overlap_matches_runtime_gate():
    assert _min_feasible_overlap(0, 0.7) == 0
    assert _min_feasible_overlap(4, 0.5) == 2
    assert _min_feasible_overlap(10, 0.7) == 7
    # The strict threshold only accepts a full overlap.
    assert _min_feasible_overlap(4, 0.999) == 4


def test_hydrated_candidates_are_shared_across_detectors(
    library, catalog
):
    config = GretelConfig()
    index = compile_library(library, config=config)
    a = OperationDetector(library, library.symbols, catalog, config,
                          compiled_index=index)
    b = OperationDetector(library, library.symbols, catalog, config,
                          compiled_index=index)
    api_key = library.symbols.api_key(sorted(library.postings())[0])
    # Hydration is memoized on the artifact: both detectors serve the
    # same read-only list (the perf contract behind BENCH_index).
    assert a.candidates_for(api_key) is b.candidates_for(api_key)
    assert a.candidates_indexed > 0


def test_verify_selection_passes_on_a_fresh_index(library):
    result = verify_selection(library, strict=False)
    assert result.ok
    assert "EQUIVALENT" in result.summary()


def test_corrupted_postings_raise_selection_divergence(library):
    index = compile_library(library)
    payload = index.to_dict()
    victim = sorted(payload["postings"])[0]
    del payload["postings"][victim]
    corrupted = CompiledIndex.from_dict(payload)
    with pytest.raises(SelectionDivergence, match="DIVERGED"):
        verify_selection(library, index=corrupted)
    result = verify_selection(library, index=corrupted, strict=False)
    assert not result.ok
    assert any("multisets differ" in m for m in result.mismatches)


def test_candidate_signature_captures_preparation_content(
    library, catalog
):
    config = GretelConfig()
    detector = OperationDetector(
        library, library.symbols, catalog, config,
    )
    api_key = library.symbols.api_key(sorted(library.postings())[0])
    for candidate in detector.candidates_for(api_key):
        operation, sc, cuts, full, pure = candidate_signature(candidate)
        assert operation == candidate.original.operation
        assert sc == candidate.sc_symbols
        assert cuts == tuple(candidate.cut_lengths)
        assert full == candidate.full_symbols
        assert pure == candidate.pure_read
