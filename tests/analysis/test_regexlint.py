"""Regex pass: star pathologies and the bounded step estimator."""

from hypothesis import given, strategies as st

from repro.analysis import regexlint
from repro.analysis.regexlint import estimate_matcher_steps
from repro.core.fingerprint import Fingerprint


def _rules(findings):
    return [f.rule for f in findings]


def test_adjacent_identical_starred_reads_flagged(
    make_fingerprint, make_context, state_change_keys, read_keys
):
    # write, read, read(same), write — the noise filter would have
    # collapsed the read run, so its survival is a generation bug.
    keys = [state_change_keys[0], read_keys[0], read_keys[0],
            state_change_keys[1]]
    findings = regexlint.run(make_context([make_fingerprint("op", keys)]))
    assert "RGX001" in _rules(findings)


def test_distinct_adjacent_reads_not_flagged(
    make_fingerprint, make_context, state_change_keys, read_keys
):
    keys = [state_change_keys[0], read_keys[0], read_keys[1]]
    findings = regexlint.run(make_context([make_fingerprint("op", keys)]))
    assert "RGX001" not in _rules(findings)


def test_pure_read_fingerprint_is_vacuous_warning(
    make_fingerprint, make_context, read_keys
):
    findings = regexlint.run(
        make_context([make_fingerprint("op", read_keys[:3])])
    )
    vacuous = [f for f in findings if f.rule == "RGX002"]
    assert len(vacuous) == 1
    assert vacuous[0].severity.label == "warning"


def test_no_reads_means_strict_equals_relaxed(
    make_fingerprint, make_context, state_change_keys
):
    findings = regexlint.run(
        make_context([make_fingerprint("op", state_change_keys[:3])])
    )
    assert "RGX003" in _rules(findings)
    assert "RGX002" not in _rules(findings)


def test_step_budget_exceeded_flagged(
    make_fingerprint, make_context, state_change_keys
):
    # 60 repetitions of one literal: multiplicity drives the estimate
    # far past a tiny budget.
    keys = [state_change_keys[0]] * 60
    ctx = make_context([make_fingerprint("op", keys)], step_budget=10_000)
    findings = regexlint.run(ctx)
    assert "RGX004" in _rules(findings)


def test_long_star_run_reported(
    make_fingerprint, make_context, state_change_keys, read_keys
):
    keys = [state_change_keys[0]] + read_keys[:12] + [state_change_keys[1]]
    ctx = make_context([make_fingerprint("op", keys)], star_run_threshold=12)
    findings = regexlint.run(ctx)
    assert "RGX005" in _rules(findings)


def test_estimator_baseline_and_empty():
    assert estimate_matcher_steps("", 1000) == 0
    assert estimate_matcher_steps("abc", 0) == 0
    # All-distinct literals: one linear pass.
    assert estimate_matcher_steps("abc", 500) == 500


@given(
    literals=st.text(alphabet="abcd", max_size=40),
    window=st.integers(min_value=0, max_value=10_000),
)
def test_estimator_properties(literals, window):
    steps = estimate_matcher_steps(literals, window)
    assert steps >= 0
    # Never below one pass over the window (when there is work to do).
    if literals and window:
        assert steps >= window
    # Monotone in the window size.
    assert estimate_matcher_steps(literals, window + 100) >= steps


def test_estimator_grows_with_multiplicity():
    flat = estimate_matcher_steps("abcdef", 768)
    spiky = estimate_matcher_steps("aaabcf", 768)
    assert spiky > flat


def test_vacuous_empty_fingerprint_ignored(make_context):
    # Degenerate empty-symbols fingerprint must not crash the pass.
    empty = Fingerprint("op-empty", "", ())
    findings = regexlint.run(make_context([empty]))
    assert "RGX002" not in _rules(findings)
