"""Engine: pass selection, capping, and the seed-library gate."""

import pytest

from repro.analysis import LintContext, run_lint
from repro.analysis.engine import PASSES
from repro.analysis.render import render_json, render_text
from repro.analysis.findings import LintReport, Severity
from repro.openstack.catalog import default_catalog


def test_registry_has_all_seven_passes():
    assert list(PASSES) == [
        "ambiguity", "truncation", "integrity", "regex", "noise-config",
        "discriminability", "index-drift",
    ]


def test_unknown_pass_rejected(make_fingerprint, make_context,
                               state_change_keys):
    ctx = make_context([make_fingerprint("op", state_change_keys[:3])])
    with pytest.raises(KeyError):
        run_lint(ctx, passes=["ambiguity", "bogus"])


def test_pass_subset_runs_in_registry_order(
    make_fingerprint, make_context, state_change_keys
):
    ctx = make_context([make_fingerprint("op", state_change_keys[:3])])
    report = run_lint(ctx, passes=["integrity", "ambiguity"])
    assert report.passes == ("ambiguity", "integrity")
    assert all(f.pass_name in ("ambiguity", "integrity")
               for f in report.findings)


def test_per_rule_capping_preserves_exact_counts(
    make_fingerprint, make_context, read_keys, state_change_keys
):
    # 10 distinct shapes, each with a degenerate truncation → 10 TRN001.
    fps = [
        make_fingerprint(f"op-{i}", [read_keys[i], state_change_keys[i]])
        for i in range(10)
    ]
    ctx = make_context(fps, max_findings_per_rule=3)
    report = run_lint(ctx, passes=["truncation"])
    assert report.rule_counts["TRN001"] == 10
    rendered = [f for f in report.findings if f.rule == "TRN001"]
    # 3 kept + 1 aggregate overflow note.
    assert len(rendered) == 4
    assert any(f.location == "(aggregate)" for f in rendered)


def test_report_stats_recorded(make_fingerprint, make_context,
                               state_change_keys):
    ctx = make_context([make_fingerprint("op", state_change_keys[:3])])
    report = run_lint(ctx)
    assert report.stats["fingerprints"] == 1
    assert report.stats["catalog_apis"] == len(default_catalog())
    assert report.stats["symbols_used"] == 3
    assert report.stats["fp_max"] == 3


def test_renderers_on_synthetic_report(make_fingerprint, make_context,
                                       state_change_keys):
    ctx = make_context([make_fingerprint("op", state_change_keys[:3])])
    report = run_lint(ctx)
    text = render_text(report)
    assert "repro lint:" in text
    assert "error(s)" in text
    rebuilt = LintReport.from_dict(
        __import__("json").loads(render_json(report))
    )
    assert rebuilt.to_dict() == report.to_dict()


def test_seed_library_lints_clean(full_character):
    """The gate the CI step enforces: the shipped library has no errors."""
    library = full_character.library
    from repro.evaluation.common import default_suite

    groups = {
        test.test_id: test.template.name
        for test in default_suite().tests
    }
    ctx = LintContext(
        library=library, symbols=library.symbols,
        catalog=default_catalog(), operation_groups=groups,
    )
    report = run_lint(ctx)
    assert report.passes == tuple(PASSES)
    assert report.errors == []
    assert report.exit_code() == 0
    # The known cross-template ambiguity of the generated suite is
    # reported (keypair lifecycle vs keypair queries, image
    # download vs upload) — the pass sees real overlap, not silence.
    assert report.rule_counts.get("AMB001", 0) >= 1
    assert Severity.WARNING in {f.severity for f in report.findings}
