"""Shared fixtures for the static-analyzer tests."""

from typing import Sequence

import pytest

from repro.analysis import LintContext
from repro.core.fingerprint import Fingerprint, FingerprintLibrary
from repro.core.symbols import SymbolTable
from repro.openstack.catalog import ApiCatalog, default_catalog


@pytest.fixture(scope="session")
def catalog() -> ApiCatalog:
    return default_catalog()


@pytest.fixture(scope="session")
def symbols(catalog) -> SymbolTable:
    return SymbolTable(catalog)


@pytest.fixture(scope="session")
def state_change_keys(catalog):
    """Plenty of distinct non-noise state-change API keys."""
    return [
        api.key for api in catalog.apis
        if api.state_change and not api.noise
    ]


@pytest.fixture(scope="session")
def read_keys(catalog):
    """Distinct non-noise, non-keystone read API keys."""
    return [
        api.key for api in catalog.apis
        if api.idempotent_read and not api.noise
        and api.service != "keystone"
    ]


@pytest.fixture()
def make_fingerprint(symbols, catalog):
    """Build a Fingerprint from API keys (mask from the catalog)."""

    def build(operation: str, api_keys: Sequence[str], **kwargs) -> Fingerprint:
        return Fingerprint(
            operation=operation,
            symbols=symbols.encode(api_keys),
            state_change_mask=tuple(
                catalog.get(key).state_change for key in api_keys
            ),
            **kwargs,
        )

    return build


@pytest.fixture()
def make_context(symbols, catalog):
    """Build a LintContext around a list of fingerprints."""

    def build(fingerprints, **kwargs) -> LintContext:
        library = FingerprintLibrary(symbols)
        for fingerprint in fingerprints:
            library.add(fingerprint)
        return LintContext(
            library=library, symbols=symbols, catalog=catalog, **kwargs
        )

    return build
