"""Findings/report layer: severity ordering, gating, JSON round-trip."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.findings import Finding, LintReport, Severity, sort_findings


def _finding(rule="AMB001", severity=Severity.WARNING, **kwargs):
    defaults = dict(
        pass_name="ambiguity", location="fingerprint:op",
        message="msg", witness=("a", "b"), fix_hint="do x",
    )
    defaults.update(kwargs)
    return Finding(rule=rule, severity=severity, **defaults)


def test_severity_order_and_labels():
    assert Severity.INFO < Severity.WARNING < Severity.ERROR
    assert Severity.ERROR.label == "error"
    assert Severity.from_label("warning") is Severity.WARNING
    with pytest.raises(ValueError):
        Severity.from_label("fatal")


def test_exit_code_gating():
    clean = LintReport()
    assert clean.exit_code() == 0
    assert clean.exit_code(strict=True) == 0
    assert clean.max_severity is None

    info = LintReport(findings=[_finding(severity=Severity.INFO)])
    assert info.exit_code() == 0
    assert info.exit_code(strict=True) == 0

    warn = LintReport(findings=[_finding(severity=Severity.WARNING)])
    assert warn.exit_code() == 0
    assert warn.exit_code(strict=True) == 1

    err = LintReport(findings=[_finding(severity=Severity.ERROR)])
    assert err.exit_code() == 1
    assert err.exit_code(strict=True) == 1


def test_counts_and_accessors():
    report = LintReport(findings=[
        _finding(severity=Severity.ERROR),
        _finding(severity=Severity.WARNING),
        _finding(severity=Severity.WARNING),
    ])
    assert report.counts() == {"error": 1, "warning": 2, "info": 0}
    assert len(report.errors) == 1
    assert len(report.warnings) == 2


def test_sort_findings_severity_first():
    ordered = sort_findings([
        _finding(rule="ZZZ9", severity=Severity.INFO),
        _finding(rule="AAA1", severity=Severity.ERROR),
        _finding(rule="MMM5", severity=Severity.WARNING),
    ])
    assert [f.severity for f in ordered] == [
        Severity.ERROR, Severity.WARNING, Severity.INFO,
    ]


def test_report_round_trip():
    report = LintReport(
        findings=[_finding(), _finding(rule="SYM001", severity=Severity.ERROR)],
        passes=("ambiguity", "integrity"),
        stats={"fingerprints": 2},
        rule_counts={"AMB001": 1, "SYM001": 1},
    )
    rebuilt = LintReport.from_dict(report.to_dict())
    assert rebuilt.to_dict() == report.to_dict()
    assert rebuilt.findings == report.findings


_label = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126),
    min_size=1, max_size=20,
)


@given(
    rule=_label,
    severity=st.sampled_from(list(Severity)),
    message=_label,
    witness=st.lists(_label, max_size=4),
)
def test_finding_round_trip_property(rule, severity, message, witness):
    finding = Finding(
        rule=rule, severity=severity, pass_name="p", location="l",
        message=message, witness=tuple(witness),
    )
    assert Finding.from_dict(finding.to_dict()) == finding
