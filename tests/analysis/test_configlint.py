"""Noise-config pass: dead filter rules and sizing invariants."""

from repro.analysis import configlint
from repro.core.config import GretelConfig
from repro.openstack.apis import Api, ApiKind
from repro.openstack.catalog import ApiCatalog


def _rules(findings):
    return [f.rule for f in findings]


def test_default_config_and_catalog_are_clean(
    make_fingerprint, make_context, state_change_keys
):
    ctx = make_context([make_fingerprint("op", state_change_keys[:3])])
    assert configlint.run(ctx) == []


def test_dead_noise_rules_flagged_on_reduced_catalog(
    make_fingerprint, make_context, state_change_keys
):
    # A catalog with no noise APIs, no keystone REST and no reads:
    # every filter rule is dead.
    bare = ApiCatalog()
    bare.add(Api(ApiKind.REST, "nova", "POST", "/v2.1/servers"))
    ctx = make_context([make_fingerprint("op", state_change_keys[:2])])
    ctx.catalog = bare
    findings = configlint.run(ctx)
    dead = [f for f in findings if f.rule == "NSE001"]
    assert len(dead) == 3
    assert {f.location for f in dead} == {
        "noise-rule:noise-flag",
        "noise-rule:keystone-rest",
        "noise-rule:read-collapse",
    }


def test_noise_symbol_inside_fingerprint_flagged(
    make_fingerprint, make_context, catalog, state_change_keys
):
    noise_key = catalog.noise_apis[0].key
    fp = make_fingerprint("op", [state_change_keys[0], noise_key])
    findings = configlint.run(make_context([fp]))
    leaked = [f for f in findings if f.rule == "NSE002"]
    assert len(leaked) == 1
    assert leaked[0].location == "fingerprint:op"


def test_config_invariant_violations_become_errors(
    make_fingerprint, make_context, state_change_keys
):
    bad = GretelConfig(c1=0.0, c2=-1.0, match_coverage=1.5, alpha=-5)
    ctx = make_context(
        [make_fingerprint("op", state_change_keys[:3])], config=bad
    )
    findings = [f for f in configlint.run(ctx) if f.rule == "CFG001"]
    assert findings
    assert all(f.severity.label == "error" for f in findings)
    locations = {f.location for f in findings}
    assert "config:alpha-positive" in locations
    assert "config:c1-range" in locations
    assert "config:c2-range" in locations
    assert "config:coverage-range" in locations


def test_invariants_method_directly():
    assert GretelConfig().invariants(62) == []
    codes = [code for code, _ in GretelConfig(alpha=10).invariants(62)]
    assert "alpha-fp-max" in codes
    codes = [code for code, _ in GretelConfig(fp_max=10).invariants(62)]
    assert "fp-max-override" in codes
    codes = [code for code, _ in
             GretelConfig(stop_patience=0, length_tolerance=-1).invariants(0)]
    assert "stop-patience" in codes and "length-tolerance" in codes
