"""Integrity pass: symbol-space overflow, bijectivity, index health."""

from repro.analysis import integrity
from repro.core.fingerprint import Fingerprint


def _rules(findings):
    return [f.rule for f in findings]


def test_clean_inputs_have_no_errors(
    make_fingerprint, make_context, state_change_keys
):
    ctx = make_context([make_fingerprint("op", state_change_keys[:3])])
    findings = integrity.run(ctx)
    assert all(f.severity.label != "error" for f in findings)


def test_pua_overflow_is_error(
    make_fingerprint, make_context, state_change_keys
):
    ctx = make_context(
        [make_fingerprint("op", state_change_keys[:3])], max_symbols=100
    )
    findings = integrity.run(ctx)
    overflow = [f for f in findings if f.rule == "SYM001"]
    assert len(overflow) == 1
    assert overflow[0].severity.label == "error"
    assert "100" in overflow[0].message


def test_undecodable_symbol_is_error(make_context):
    # A fingerprint carrying a symbol outside the table (e.g. encoded
    # against a larger catalog than the current one).
    rogue = Fingerprint("op-rogue", "", (True, True))
    findings = integrity.run(make_context([rogue]))
    assert "SYM003" in _rules(findings)
    bad = next(f for f in findings if f.rule == "SYM003")
    assert bad.location == "fingerprint:op-rogue"
    assert any(w.startswith("U+") for w in bad.witness)


def test_corrupted_inverted_index_is_error(
    make_fingerprint, make_context, state_change_keys
):
    ctx = make_context([make_fingerprint("op", state_change_keys[:3])])
    # Simulate an index corruption bug.
    ctx.library._containing[""] = {"ghost-operation"}
    findings = integrity.run(ctx)
    assert "SYM004" in _rules(findings)


def test_uncovered_apis_reported_as_info(
    make_fingerprint, make_context, state_change_keys
):
    ctx = make_context([make_fingerprint("op", state_change_keys[:3])])
    info = [f for f in integrity.run(ctx) if f.rule == "SYM005"]
    assert len(info) == 1
    assert info[0].severity.label == "info"
