"""Registry behavior and the shipped catalog's shape guarantees."""

import pytest

from repro.scenarios import (
    Scenario,
    all_scenarios,
    get,
    names,
    register_for_testing,
)
from repro.scenarios.registry import scenario


def test_names_sorted_and_stable():
    listed = names()
    assert listed == sorted(listed)
    assert [cls.name for cls in all_scenarios()] == listed


def test_get_unknown_raises_with_choices():
    with pytest.raises(KeyError) as excinfo:
        get("no_such_scenario")
    assert "broker_partition" in str(excinfo.value)


def test_duplicate_registration_rejected():
    class Dup(Scenario):
        name = "broker_partition"
        family = "test"
        description = "dup"

        def capture(self):
            raise NotImplementedError

        def expectation(self, captured):
            raise NotImplementedError

    with pytest.raises(ValueError):
        scenario(Dup)


def test_unnamed_registration_rejected():
    class NoName(Scenario):
        family = "test"
        description = "unnamed"

        def capture(self):
            raise NotImplementedError

        def expectation(self, captured):
            raise NotImplementedError

    with pytest.raises(ValueError):
        scenario(NoName)


def test_register_for_testing_undo():
    class Temp(Scenario):
        name = "temp_test_scenario"
        family = "test"
        description = "temp"

        def capture(self):
            raise NotImplementedError

        def expectation(self, captured):
            raise NotImplementedError

    undo = register_for_testing(Temp)
    assert get("temp_test_scenario") is Temp
    undo()
    assert "temp_test_scenario" not in names()


def test_register_for_testing_replace_restores_original():
    original = get("noop_control")

    class Shadow(Scenario):
        name = "noop_control"
        family = "test"
        description = "shadow"

        def capture(self):
            raise NotImplementedError

        def expectation(self, captured):
            raise NotImplementedError

    with pytest.raises(ValueError):
        register_for_testing(Shadow)
    undo = register_for_testing(Shadow, replace=True)
    assert get("noop_control") is Shadow
    undo()
    assert get("noop_control") is original


# -- catalog shape (the ISSUE's acceptance floor) ---------------------------

def test_catalog_meets_coverage_floor():
    catalog = all_scenarios()
    assert len(catalog) >= 9
    families = [cls.family for cls in catalog]
    multi = [f for f in families if f in ("multiservice", "cascade")]
    assert len(multi) >= 2
    controls = [cls for cls in catalog if cls.is_control]
    assert len(controls) >= 1


def test_catalog_goes_past_the_papers_four_fault_types():
    families = {cls.family for cls in all_scenarios()}
    beyond_paper = {"rpc", "partition", "config", "multiservice",
                    "slow-burn", "cascade", "control"}
    assert beyond_paper <= families


def test_every_scenario_declares_its_contract():
    for cls in all_scenarios():
        assert cls.name and cls.family and cls.description
        assert cls.equivalence in ("exact", "detection", "off")
