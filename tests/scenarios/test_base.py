"""Unit tests for the scenario anatomy: specs, sealing, determinism."""

import pytest

from repro.monitoring.store import MetadataStore
from repro.scenarios import (
    CapturedRun,
    Expectation,
    FaultSpec,
    Scenario,
    ScenarioError,
)
from tests.scenarios.conftest import make_report


class _Stub(Scenario):
    name = "stub"
    family = "test"
    description = "stub"

    def capture(self):
        return self._seal([], MetadataStore(), injected=1, duration=0.0)

    def expectation(self, captured):
        return Expectation(faults=())


class _StubControl(_Stub):
    name = "stub_control"
    is_control = True


# -- FaultSpec.attributes ---------------------------------------------------

def test_spec_attributes_matching_report():
    spec = FaultSpec(label="x", start=0.5, services=("nova",),
                     statuses=(500,), op_id="tempest-compute-0001")
    assert spec.attributes(make_report(ts=1.0))


def test_spec_rejects_wrong_kind():
    spec = FaultSpec(label="x", start=0.0)
    assert not spec.attributes(make_report(kind="performance"))
    assert FaultSpec(label="x", start=0.0,
                     kind="performance").attributes(
        make_report(kind="performance"))


def test_spec_rejects_event_before_window():
    spec = FaultSpec(label="x", start=2.0)
    assert not spec.attributes(make_report(ts=1.0))


def test_spec_window_end_plus_slack():
    spec = FaultSpec(label="x", start=0.0, end=2.0, slack=1.0)
    assert spec.attributes(make_report(ts=2.9))
    assert not spec.attributes(make_report(ts=3.1))


def test_spec_open_ended_window():
    spec = FaultSpec(label="x", start=0.0)
    assert spec.attributes(make_report(ts=1e9))


def test_spec_rejects_wrong_service_status_op():
    base = dict(label="x", start=0.0)
    assert not FaultSpec(services=("glance",), **base).attributes(
        make_report(service="nova"))
    assert not FaultSpec(statuses=(403,), **base).attributes(
        make_report(status=500))
    assert not FaultSpec(op_id="other", **base).attributes(
        make_report(op_id="tempest-compute-0001"))


def test_spec_empty_filters_accept_any():
    spec = FaultSpec(label="x", start=0.0)
    assert spec.attributes(make_report(service="cinder", status=503,
                                       op_id=""))


# -- sealing invariant ------------------------------------------------------

def test_seal_rejects_faultless_non_control(small_character):
    scenario = _Stub(small_character, seed=0)
    with pytest.raises(ScenarioError):
        scenario._seal([], MetadataStore(), injected=0, duration=0.0)


def test_seal_allows_faultless_control(small_character):
    scenario = _StubControl(small_character, seed=0)
    captured = scenario._seal([], MetadataStore(), injected=0,
                              duration=0.0)
    assert isinstance(captured, CapturedRun)
    assert captured.injected == 0


def test_seal_copies_inputs(small_character):
    scenario = _Stub(small_character, seed=0)
    events = []
    meta = {"k": "v"}
    captured = scenario._seal(events, MetadataStore(), injected=2,
                              duration=1.5, meta=meta)
    events.append("mutated")
    meta["k"] = "mutated"
    assert captured.events == []
    assert captured.meta == {"k": "v"}


# -- deterministic identity -------------------------------------------------

def test_rng_stable_per_scenario_and_seed(small_character):
    a = _Stub(small_character, seed=3).rng().random()
    b = _Stub(small_character, seed=3).rng().random()
    assert a == b


def test_rng_differs_across_seeds_and_names(small_character):
    base = _Stub(small_character, seed=0).rng().random()
    assert base != _Stub(small_character, seed=1).rng().random()
    assert base != _StubControl(small_character, seed=0).rng().random()
