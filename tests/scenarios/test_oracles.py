"""Unit tests for the graded oracles, including the negative paths.

The negative tests are the point: a deliberately wrong localization
contract must FAIL (grading is not vacuous), and a control graded
over zero reports must score precision as the undefined 0/0 — never
crash, never count as 0 or 1.
"""

from repro.evaluation.common import DetectionCounts, safe_ratio
from repro.monitoring.store import MetadataStore
from repro.scenarios import (
    FAIL,
    PASS,
    SKIP,
    CapturedRun,
    CauseSpec,
    DetectionOracle,
    Expectation,
    FalsePositiveOracle,
    FaultSpec,
    GradingContext,
    Localization,
    LocalizationOracle,
    oracles_for,
)
from repro.scenarios.oracles import detection_counts
from tests.scenarios.conftest import make_report


def _ctx(expectation, reports, scenario=None):
    captured = CapturedRun(events=[], store=MetadataStore(),
                           injected=1, duration=1.0)
    return GradingContext(scenario=scenario, captured=captured,
                          expectation=expectation, reports=reports,
                          label="serial")


SPEC = FaultSpec(label="x", start=0.0, services=("nova",),
                 statuses=(500,), count=2)


# -- detection --------------------------------------------------------------

def test_detection_passes_on_perfect_run():
    exp = Expectation(faults=(SPEC,))
    reports = [make_report(ts=0.5), make_report(ts=1.0)]
    outcome = DetectionOracle().grade(_ctx(exp, reports))
    assert outcome.grade == PASS
    assert outcome.score == 1.0
    assert outcome.counts["precision"] == 1.0
    assert outcome.counts["recall"] == 1.0


def test_detection_fails_below_recall_floor():
    exp = Expectation(faults=(SPEC,), min_recall=1.0)
    outcome = DetectionOracle().grade(_ctx(exp, [make_report(ts=0.5)]))
    assert outcome.grade == FAIL
    assert "recall" in outcome.detail


def test_detection_fails_below_precision_floor():
    exp = Expectation(faults=(SPEC,), min_precision=1.0)
    reports = [make_report(ts=0.5), make_report(ts=1.0),
               make_report(service="glance", status=413)]
    outcome = DetectionOracle().grade(_ctx(exp, reports))
    assert outcome.grade == FAIL
    assert "precision" in outcome.detail


def test_detection_fails_on_silent_run():
    exp = Expectation(faults=(SPEC,))
    outcome = DetectionOracle().grade(_ctx(exp, []))
    assert outcome.grade == FAIL
    assert outcome.score is None  # F1 undefined with no reports


def test_detection_recall_is_instance_level():
    # One chatty fault instance producing 5 reports must not mask the
    # missed second instance.
    exp = Expectation(faults=(SPEC,), min_recall=1.0)
    reports = [make_report(ts=0.1 * i) for i in range(1, 6)]
    counts = detection_counts(_ctx(exp, reports))
    assert counts.true_reports == 5
    assert counts.detected_instances == 2  # capped at spec.count
    assert counts.recall == 1.0


# -- localization (incl. the deliberately-wrong negative path) -------------

def _loc_exp(localization):
    return Expectation(faults=(SPEC,), localization=localization)


def test_localization_confirms_expected_facts():
    loc = Localization(
        causes=(CauseSpec("software", "rabbitmq", "ctrl"),),
        services=("nova",), operation="tempest-compute-0001",
    )
    reports = [make_report(operations=("tempest-compute-0001",),
                           causes=(("software", "rabbitmq", "ctrl"),))]
    outcome = LocalizationOracle().grade(_ctx(_loc_exp(loc), reports))
    assert outcome.grade == PASS
    assert outcome.score == 1.0


def test_wrong_expected_cause_fails_not_vacuously():
    # The scenario (wrongly) claims mysql on ctrl died; Algorithm 3
    # correctly found rabbitmq.  The oracle must FAIL, proving the
    # contract is actually checked.
    loc = Localization(causes=(CauseSpec("software", "mysql", "ctrl"),))
    reports = [make_report(causes=(("software", "rabbitmq", "ctrl"),))]
    outcome = LocalizationOracle().grade(_ctx(_loc_exp(loc), reports))
    assert outcome.grade == FAIL
    assert "mysql" in outcome.detail


def test_wrong_expected_node_fails():
    loc = Localization(
        causes=(CauseSpec("software", "rabbitmq", "compute-1"),),
    )
    reports = [make_report(causes=(("software", "rabbitmq", "ctrl"),))]
    outcome = LocalizationOracle().grade(_ctx(_loc_exp(loc), reports))
    assert outcome.grade == FAIL


def test_cause_on_any_node_accepted():
    loc = Localization(causes=(CauseSpec("software", "rabbitmq"),))
    reports = [make_report(causes=(("software", "rabbitmq", "ctrl"),))]
    outcome = LocalizationOracle().grade(_ctx(_loc_exp(loc), reports))
    assert outcome.grade == PASS


def test_operation_hit_rate_below_floor_fails():
    loc = Localization(operation="tempest-compute-0001",
                       min_operation_rate=0.5)
    reports = [make_report(operations=("tempest-compute-9999",)),
               make_report(operations=("tempest-compute-9998",)),
               make_report(operations=("tempest-compute-0001",))]
    outcome = LocalizationOracle().grade(_ctx(_loc_exp(loc), reports))
    assert outcome.grade == FAIL
    assert "hit rate" in outcome.detail


def test_localization_fails_with_no_attributed_reports():
    loc = Localization(causes=(CauseSpec("software", "rabbitmq"),))
    outcome = LocalizationOracle().grade(_ctx(_loc_exp(loc), []))
    assert outcome.grade == FAIL
    assert outcome.score == 0.0


def test_localization_skips_without_contract():
    exp = Expectation(faults=(SPEC,), localization=None)
    outcome = LocalizationOracle().grade(_ctx(exp, []))
    assert outcome.grade == SKIP
    assert outcome.ok


# -- controls: undefined precision must not crash ---------------------------

def test_control_zero_over_zero_precision_is_undefined():
    exp = Expectation(faults=())
    outcome = FalsePositiveOracle().grade(_ctx(exp, []))
    assert outcome.grade == PASS
    assert outcome.counts["precision"] is None
    assert "undefined (0/0)" in outcome.detail


def test_control_fails_on_any_report():
    exp = Expectation(faults=())
    outcome = FalsePositiveOracle().grade(_ctx(exp, [make_report()]))
    assert outcome.grade == FAIL
    assert outcome.counts["precision"] == 0.0


def test_safe_ratio_and_counts_never_divide_by_zero():
    assert safe_ratio(0, 0) is None
    empty = DetectionCounts()
    assert empty.precision is None
    assert empty.recall is None
    assert empty.f1 is None
    rendered = empty.as_dict()
    assert rendered["precision"] is None
    assert rendered["recall"] is None


def test_micro_average_sums_counts():
    merged = DetectionCounts.micro([
        DetectionCounts(true_reports=3, false_reports=1, instances=2,
                        detected_instances=2),
        DetectionCounts(true_reports=1, false_reports=0, instances=1,
                        detected_instances=0),
    ])
    assert merged.true_reports == 4
    assert merged.precision == 0.8
    assert merged.recall == 2 / 3


# -- battery selection ------------------------------------------------------

def test_oracles_for_control_vs_fault_scenario(small_character):
    from tests.scenarios.test_base import _Stub, _StubControl

    fault_battery = oracles_for(_Stub(small_character))
    assert [o.name for o in fault_battery] == ["detection",
                                              "localization"]
    control_battery = oracles_for(_StubControl(small_character))
    assert [o.name for o in control_battery] == ["false-positives"]
