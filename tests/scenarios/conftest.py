"""Fixtures and report factories for the scenario-catalog tests."""

import pytest

from repro.core.detector import DetectionResult
from repro.core.reports import FaultReport, RootCauseFinding
from repro.openstack.apis import ApiKind
from repro.openstack.wire import WireEvent


def make_event(*, seq=1, service="nova", status=500, ts=1.0,
               op_id="tempest-compute-0001",
               api_key="rest:nova:POST:/v2.1/servers"):
    """A minimal REST wire event for oracle unit tests."""
    return WireEvent(
        seq=seq, api_key=api_key, kind=ApiKind.REST, method="POST",
        name=api_key.split(":", 3)[-1], src_service="horizon",
        src_node="ctrl", src_ip="10.0.0.10", dst_service=service,
        dst_node="nova-ctl", dst_ip="10.0.0.11",
        ts_request=ts - 0.002, ts_response=ts, status=status,
        op_id=op_id,
    )


def make_report(*, kind="operational", ts=1.0, service="nova",
                status=500, op_id="tempest-compute-0001",
                operations=(), causes=()):
    """A hand-built fault report with the fields oracles inspect."""
    event = make_event(service=service, status=status, ts=ts,
                       op_id=op_id)
    detection = DetectionResult(
        fault=event,
        matched=[],
        candidates=len(operations),
        theta=1.0 / max(1, len(operations)),
        beta_used=384,
        iterations=1,
        window_span=(ts - 1.0, ts + 1.0),
    )
    # DetectionResult.operations is derived from matched fingerprints;
    # tests fake it with a lightweight stand-in per operation name.
    detection.matched = [type("Fp", (), {"operation": name})()
                         for name in operations]
    findings = [RootCauseFinding(node=node, kind=ckind, subject=subject,
                                 detail="test")
                for (ckind, subject, node) in causes]
    return FaultReport(ts=ts + 0.5, kind=kind, fault_event=event,
                       detection=detection, root_causes=findings)


@pytest.fixture
def report_factory():
    return make_report
