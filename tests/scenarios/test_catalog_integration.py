"""Integration: the shipped catalog passes end to end at the pinned seed.

Runs the full catalog once (serial + 4-shard replays, all oracles),
then checks the scorecard round-trips through JSON, matches the
committed ``results/SCENARIOS.json`` baseline, and that the CLI
surface behaves.
"""

import json
import os

import pytest

from repro.scenarios import (
    CauseSpec,
    Expectation,
    Localization,
    build_scorecard,
    diff_scorecards,
    dump_scorecard,
    names,
    register_for_testing,
    run_catalog,
    run_scenario,
)
from repro.scenarios.catalog import CorrelatedMultiService

PINNED_SEED = 0
SHARDS = 4
SCORECARD_PATH = os.path.join(
    os.path.dirname(__file__), "..", "..", "results", "SCENARIOS.json",
)


@pytest.fixture(scope="module")
def catalog_result(full_character):
    return run_catalog(full_character, seed=PINNED_SEED, shards=SHARDS)


@pytest.mark.slow
def test_full_catalog_passes_serial_and_sharded(catalog_result):
    assert catalog_result.all_pass
    assert len(catalog_result.results) == len(names()) >= 9
    for result in catalog_result.results:
        serial_fail = [o for o in result.serial_outcomes if not o.ok]
        sharded_fail = [o for o in result.sharded_outcomes if not o.ok]
        assert not serial_fail, (result.name, serial_fail)
        assert not sharded_fail, (result.name, sharded_fail)
        if result.equivalence is not None:
            assert result.equivalence.ok, (result.name,
                                           result.equivalence.detail)


@pytest.mark.slow
def test_per_scenario_precision_recall_reported(catalog_result):
    for result in catalog_result.results:
        rendered = result.counts.as_dict()
        assert set(rendered) >= {"precision", "recall", "f1",
                                 "instances"}
        if result.counts.instances:
            assert rendered["recall"] is not None
    micro = catalog_result.counts
    assert micro.precision is not None and micro.precision > 0.9
    assert micro.recall == 1.0


@pytest.mark.slow
def test_scorecard_round_trips_through_json(catalog_result):
    document = build_scorecard(catalog_result)
    reloaded = json.loads(dump_scorecard(document))
    assert reloaded == document
    assert reloaded["schema"] == "gretel-scenarios/v1"
    assert reloaded["seed"] == PINNED_SEED
    assert reloaded["shards"] == SHARDS
    scenario_names = [e["name"] for e in reloaded["scenarios"]]
    assert scenario_names == sorted(scenario_names) == names()
    assert diff_scorecards(document, reloaded) == []


@pytest.mark.slow
def test_committed_scorecard_has_not_drifted(catalog_result):
    with open(SCORECARD_PATH, "r", encoding="utf-8") as handle:
        committed = json.load(handle)
    fresh = build_scorecard(catalog_result)
    drift = diff_scorecards(committed, fresh)
    assert drift == [], "\n".join(drift)


def test_detect_disabled_control_grades_without_crashing(full_character):
    result = run_scenario("noop_control", full_character,
                          seed=PINNED_SEED, detect=False)
    assert result.passed
    assert result.counts.precision is None
    assert result.counts.recall is None
    [outcome] = result.serial_outcomes
    assert outcome.counts["precision"] is None


def test_wrong_localization_contract_fails_live(full_character):
    """End-to-end negative path: grading is not vacuous.

    A clone of the cheapest live scenario claims mysql on the control
    node died; Algorithm 3 (correctly) finds the disk and ntp faults
    instead, so the localization oracle must FAIL the run.
    """

    class WronglyLocalized(CorrelatedMultiService):
        name = "test_wrongly_localized"

        def expectation(self, captured):
            real = super().expectation(captured)
            return Expectation(
                faults=real.faults,
                min_precision=real.min_precision,
                min_recall=real.min_recall,
                localization=Localization(
                    causes=(CauseSpec("software", "mysql", "ctrl"),),
                ),
            )

    undo = register_for_testing(WronglyLocalized)
    try:
        result = run_scenario("test_wrongly_localized", full_character,
                              seed=PINNED_SEED)
    finally:
        undo()
    assert not result.passed
    grades = {o.oracle: o for o in result.serial_outcomes}
    assert grades["localization"].grade == "FAIL"
    assert "mysql" in grades["localization"].detail
    # Detection itself still passes: the faults fired and were found.
    assert grades["detection"].grade == "PASS"


# -- CLI surface ------------------------------------------------------------

def test_cli_scenarios_list_json(capsys):
    from repro.cli import main

    assert main(["scenarios", "list", "--format", "json"]) == 0
    entries = json.loads(capsys.readouterr().out)
    assert [e["name"] for e in entries] == names()
    assert all({"family", "description", "is_control"} <= set(e)
               for e in entries)


def test_cli_scenarios_run_json_round_trip(full_character, capsys):
    from repro.cli import main

    code = main(["scenarios", "run", "--scenario", "noop_control",
                 "--seed", str(PINNED_SEED), "--format", "json"])
    assert code == 0
    document = json.loads(capsys.readouterr().out)
    assert document["schema"] == "gretel-scenarios/v1"
    assert [e["name"] for e in document["scenarios"]] == ["noop_control"]
    assert document["all_pass"] is True


def test_cli_scenarios_run_rejects_unknown_name(capsys):
    from repro.cli import main

    assert main(["scenarios", "run", "--scenario", "nope"]) == 2
    assert "unknown scenario" in capsys.readouterr().err
