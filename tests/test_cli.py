"""Tests for the command-line interface."""

import json
import os
import subprocess
import sys

import pytest

import repro
from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_suite_command(capsys):
    assert main(["suite"]) == 0
    out = capsys.readouterr().out
    assert "1200 tests" in out
    assert "compute    517" in out


def test_demo_rejects_unknown_scenario(capsys):
    assert main(["demo", "bogus"]) == 2
    assert "unknown scenario" in capsys.readouterr().err


def test_evaluate_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["evaluate", "fig99"])


def test_demo_scenario_runs(full_character, capsys):
    # full_character warms the on-disk cache the CLI will read.
    assert main(["demo", "linuxbridge_failure"]) == 0
    out = capsys.readouterr().out
    assert "[PASS] linuxbridge_failure" in out


def test_evaluate_table1(full_character, capsys):
    assert main(["evaluate", "table1"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "compute" in out


# ---------------------------------------------------------------------------
# repro lint
# ---------------------------------------------------------------------------

def _ambiguous_library_file(tmp_path):
    """A two-fingerprint library where one subsumes the other."""
    from repro.core.fingerprint import Fingerprint, FingerprintLibrary
    from repro.core.symbols import SymbolTable
    from repro.openstack.catalog import default_catalog

    catalog = default_catalog()
    symbols = SymbolTable(catalog)
    keys = [a.key for a in catalog.apis if a.state_change and not a.noise][:6]
    library = FingerprintLibrary(symbols)
    library.add(Fingerprint("op-short", symbols.encode(keys[:3]), (True,) * 3))
    library.add(Fingerprint("op-long", symbols.encode(keys), (True,) * 6))
    path = tmp_path / "library.json"
    path.write_text(json.dumps(library.to_dict()))
    return str(path)


def test_lint_clean_library_exits_zero(full_character, capsys):
    # full_character warms the on-disk cache the CLI will read.
    assert main(["lint"]) == 0
    out = capsys.readouterr().out
    assert "repro lint: 1200 fingerprints" in out
    assert "0 error(s)" in out
    assert ("passes: ambiguity, truncation, integrity, regex, "
            "noise-config, discriminability, index-drift") in out


def test_lint_strict_flags_injected_ambiguous_pair(tmp_path, capsys):
    path = _ambiguous_library_file(tmp_path)
    assert main(["lint", "--library", path]) == 0
    capsys.readouterr()
    assert main(["lint", "--library", path, "--strict"]) == 1
    out = capsys.readouterr().out
    assert "AMB002" in out
    assert "op-short" in out


def test_lint_json_output_round_trips(tmp_path, capsys):
    from repro.analysis.findings import LintReport

    path = _ambiguous_library_file(tmp_path)
    assert main(["lint", "--library", path, "--format", "json"]) == 0
    data = json.loads(capsys.readouterr().out)
    report = LintReport.from_dict(data)
    assert report.to_dict() == data
    assert report.rule_counts.get("AMB002") == 1


def test_lint_synthetic_pua_overflow_is_error(tmp_path, capsys):
    path = _ambiguous_library_file(tmp_path)
    assert main(["lint", "--library", path, "--max-symbols", "100"]) == 1
    out = capsys.readouterr().out
    assert "SYM001" in out
    assert "ERROR" in out


def test_lint_pass_subset_and_unknown_pass(tmp_path, capsys):
    path = _ambiguous_library_file(tmp_path)
    assert main(["lint", "--library", path, "--passes", "integrity"]) == 0
    capsys.readouterr()
    assert main(["lint", "--library", path, "--passes", "bogus"]) == 2
    assert "unknown lint pass" in capsys.readouterr().err


def test_lint_unreadable_library_is_usage_error(tmp_path, capsys):
    assert main(["lint", "--library", str(tmp_path / "missing.json")]) == 2
    assert "cannot read library" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# repro index
# ---------------------------------------------------------------------------

def _drifted_copy(library_path, tmp_path):
    """The same library minus one fingerprint — a stale-index library."""
    with open(library_path, encoding="utf-8") as handle:
        data = json.load(handle)
    del data["fingerprints"][0]
    path = tmp_path / "drifted.json"
    path.write_text(json.dumps(data))
    return str(path)


def test_index_build_and_inspect_round_trip(tmp_path, capsys):
    library = _ambiguous_library_file(tmp_path)
    artifact = str(tmp_path / "index.json")
    assert main(["index", "build", "--library", library,
                 "--out", artifact]) == 0
    out = capsys.readouterr().out
    assert "wrote" in out and "2 operations" in out

    assert main(["index", "inspect", artifact]) == 0
    out = capsys.readouterr().out
    assert "format version: 1" in out
    assert "selection flags: prune_rpcs=True" in out
    assert "longest postings lists:" in out

    assert main(["index", "inspect", artifact, "--check",
                 "--library", library]) == 0
    assert "fresh" in capsys.readouterr().out


def test_index_inspect_check_reports_drift(tmp_path, capsys):
    library = _ambiguous_library_file(tmp_path)
    artifact = str(tmp_path / "index.json")
    assert main(["index", "build", "--library", library,
                 "--out", artifact]) == 0
    capsys.readouterr()
    # A different library behind the same artifact: stale hashes.
    other = _drifted_copy(library, tmp_path)
    assert main(["index", "inspect", artifact, "--check",
                 "--library", other]) == 1
    out = capsys.readouterr().out
    assert "DRIFT:" in out
    assert "library hash mismatch" in out


def test_index_build_writes_to_stdout_without_out(tmp_path, capsys):
    library = _ambiguous_library_file(tmp_path)
    assert main(["index", "build", "--library", library]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["format_version"] == 1


def test_index_inspect_unreadable_artifact_is_usage_error(
    tmp_path, capsys
):
    assert main(["index", "inspect",
                 str(tmp_path / "missing.json")]) == 2
    assert "cannot read index" in capsys.readouterr().err


def test_lint_with_stale_index_fails(tmp_path, capsys):
    library = _ambiguous_library_file(tmp_path)
    artifact = str(tmp_path / "index.json")
    assert main(["index", "build", "--library", library,
                 "--out", artifact]) == 0
    capsys.readouterr()
    other = _drifted_copy(library, tmp_path)
    assert main(["lint", "--library", other, "--index", artifact,
                 "--passes", "index-drift"]) == 1
    assert "IDX001" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# Determinism: byte-identical output across hash seeds
# ---------------------------------------------------------------------------

def _cli_subprocess(args, hash_seed):
    """Run the CLI in a subprocess under a pinned PYTHONHASHSEED."""
    src = os.path.dirname(os.path.dirname(os.path.abspath(
        repro.__file__
    )))
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = src
    script = (
        "import sys; from repro.cli import main; "
        "sys.exit(main(sys.argv[1:]))"
    )
    run = subprocess.run(
        [sys.executable, "-c", script, *args],
        capture_output=True, env=env, check=False,
    )
    assert run.returncode == 0, run.stderr.decode()
    return run.stdout


def test_lint_json_is_hash_seed_invariant(tmp_path):
    library = _ambiguous_library_file(tmp_path)
    args = ["lint", "--library", library, "--format", "json"]
    assert _cli_subprocess(args, "0") == _cli_subprocess(args, "1")


def test_index_build_is_hash_seed_invariant(tmp_path):
    library = _ambiguous_library_file(tmp_path)
    args = ["index", "build", "--library", library]
    assert _cli_subprocess(args, "0") == _cli_subprocess(args, "1")


# ---------------------------------------------------------------------------
# repro analyze
# ---------------------------------------------------------------------------

def test_analyze_reports_throughput(full_character, capsys):
    # full_character warms the on-disk cache the CLI will read.
    assert main(["analyze", "--events", "3000", "--shards", "2",
                 "--no-latency"]) == 0
    out = capsys.readouterr().out
    assert "2-shard analyzer (inline backend) over 3000 events" in out
    assert "ingest" in out and "events/s" in out
    assert "reports: 2 operational" in out


def test_analyze_verify_shards_oracle(full_character, capsys):
    assert main(["analyze", "--events", "4000", "--shards", "4",
                 "--batch-size", "256", "--verify-shards"]) == 0
    out = capsys.readouterr().out
    assert "EQUIVALENT" in out
    assert "4-shard on 4000 events" in out


def test_analyze_verify_selection_oracle(full_character, capsys):
    assert main(["analyze", "--events", "3000", "--shards", "2",
                 "--no-latency", "--verify-selection"]) == 0
    out = capsys.readouterr().out
    assert "EQUIVALENT: indexed vs full-scan selection" in out
    assert "serial reports with indexed_selection on vs off" in out
    assert "2-shard reports with indexed_selection on vs off" in out
    assert "DIVERGED" not in out


def test_analyze_stage_stats_report_selection_counters(
    full_character, capsys
):
    assert main(["analyze", "--events", "3000", "--shards", "2",
                 "--no-latency", "--stage-stats"]) == 0
    out = capsys.readouterr().out
    assert "candidate selection: postings_scanned=" in out
    assert "candidates_indexed=" in out


# ---------------------------------------------------------------------------
# repro analyze --backend process
# ---------------------------------------------------------------------------

def test_analyze_process_backend_verify_shards(full_character, capsys):
    assert main(["analyze", "--events", "3000", "--shards", "2",
                 "--batch-size", "256", "--backend", "process",
                 "--verify-shards"]) == 0
    out = capsys.readouterr().out
    assert "2-shard analyzer (process backend)" in out
    assert "EQUIVALENT" in out
    assert "2-shard on 3000 events" in out


def test_analyze_process_backend_stage_stats_per_shard(
    full_character, capsys
):
    # No cross-process middleware: --stage-stats falls back to
    # per-shard worker counters merged via PipelineStats.
    assert main(["analyze", "--events", "3000", "--shards", "2",
                 "--no-latency", "--backend", "process",
                 "--stage-stats", "--format", "json"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["backend"] == "process"
    assert "stage_seconds" not in document
    shard_stats = document["shard_stats"]
    assert len(shard_stats) == 2
    total = sum(s["events_processed"] for s in shard_stats)
    assert total == 3000
    assert document["stats"]["events_processed"] == 3000


def test_analyze_process_backend_json_matches_inline(
    full_character, capsys
):
    assert main(["analyze", "--events", "3000", "--shards", "2",
                 "--no-latency", "--format", "json"]) == 0
    inline = json.loads(capsys.readouterr().out)
    assert main(["analyze", "--events", "3000", "--shards", "2",
                 "--no-latency", "--backend", "process",
                 "--format", "json"]) == 0
    process = json.loads(capsys.readouterr().out)
    assert inline["backend"] == "inline"
    assert process["backend"] == "process"
    strip = ("kind", "operations", "theta")
    assert [
        {k: r[k] for k in strip} for r in process["reports"]
    ] == [
        {k: r[k] for k in strip} for r in inline["reports"]
    ]
    assert process["stats"]["events_processed"] == \
        inline["stats"]["events_processed"]


def test_analyze_rejects_unknown_backend(full_character):
    with pytest.raises(SystemExit) as excinfo:
        main(["analyze", "--events", "1000", "--backend", "threads"])
    assert excinfo.value.code == 2


def test_serve_rejects_unknown_backend():
    with pytest.raises(SystemExit) as excinfo:
        main(["serve", "--events", "1000", "--backend", "greenlet"])
    assert excinfo.value.code == 2


def test_scenarios_run_rejects_unknown_backend():
    with pytest.raises(SystemExit) as excinfo:
        main(["scenarios", "run", "--backend", "threads"])
    assert excinfo.value.code == 2


def test_serve_process_backend_sessions(full_character, capsys):
    assert main(["serve", "--events", "3000", "--tenants", "2",
                 "--session-shards", "2", "--backend", "process",
                 "--format", "json"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["exit_code"] == 0
    assert document["session_shards"] == 2
    assert document["backend"] == "process"
    assert document["service"]["events_analyzed"] == 3000
    assert document["service"]["tenants"] == 2


def test_scenarios_run_process_backend(full_character, capsys):
    assert main(["scenarios", "run",
                 "--scenario", "synthetic_error_burst",
                 "--backend", "process"]) == 0
    out = capsys.readouterr().out
    assert "PASS" in out


# ---------------------------------------------------------------------------
# Exit-code contract (docs: every subcommand returns 0/1/2)
# ---------------------------------------------------------------------------

def test_exit_code_constants():
    from repro.cli import EXIT_FAIL, EXIT_OK, EXIT_USAGE

    assert (EXIT_OK, EXIT_FAIL, EXIT_USAGE) == (0, 1, 2)


def test_scenarios_run_exit_codes(full_character, capsys):
    # A passing catalog subset exits 0 through ScenarioResult.exit_code.
    assert main(["scenarios", "run",
                 "--scenario", "noop_synthetic_control"]) == 0
    capsys.readouterr()
    # Unknown scenario names are usage errors, not failures.
    assert main(["scenarios", "run", "--scenario", "bogus"]) == 2
    assert "unknown scenario" in capsys.readouterr().err


def test_scenarios_run_unreadable_baseline_is_usage_error(
    full_character, tmp_path, capsys
):
    assert main(["scenarios", "run",
                 "--scenario", "noop_synthetic_control",
                 "--check", str(tmp_path / "missing.json")]) == 2
    assert "cannot read baseline" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# repro analyze --format json
# ---------------------------------------------------------------------------

def test_analyze_json_document(full_character, capsys):
    assert main(["analyze", "--events", "3000", "--shards", "2",
                 "--no-latency", "--format", "json"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["events"] == 3000
    assert document["shards"] == 2
    assert document["exit_code"] == 0
    assert document["ingest_events_per_s"] > 0
    assert document["stats"]["events_processed"] == 3000
    assert len(document["reports"]) == 2
    for report in document["reports"]:
        assert report["kind"] == "operational"
        assert report["operations"]
        assert 0.0 <= report["theta"] <= 1.0


def test_analyze_out_writes_json_even_in_text_mode(
    full_character, tmp_path, capsys
):
    out = tmp_path / "run.json"
    assert main(["analyze", "--events", "3000", "--shards", "2",
                 "--no-latency", "--out", str(out)]) == 0
    # stdout stays human-readable; the file carries the document.
    assert "2-shard analyzer" in capsys.readouterr().out
    document = json.loads(out.read_text())
    assert document["events"] == 3000
    assert document["exit_code"] == 0


# ---------------------------------------------------------------------------
# repro serve
# ---------------------------------------------------------------------------

def test_serve_usage_errors(capsys):
    assert main(["serve", "--events", "100",
                 "--checkpoint-every", "50"]) == 2
    assert "--checkpoint-dir" in capsys.readouterr().err
    assert main(["serve", "--events", "100", "--resume"]) == 2
    assert "--checkpoint-dir" in capsys.readouterr().err
    assert main(["serve", "--events", "100",
                 "--pump-threads", "2"]) == 2
    assert "--async" in capsys.readouterr().err
    assert main(["serve", "--events", "100", "--async",
                 "--pump-threads", "-1"]) == 2
    assert ">= 0" in capsys.readouterr().err


def test_serve_async_json_document(full_character, capsys):
    assert main(["serve", "--events", "2000", "--tenants", "2",
                 "--alpha", "64", "--no-latency", "--async",
                 "--format", "json"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["exit_code"] == 0
    assert document["async_ingest"] is True
    assert document["pump_threads"] == 2  # default: one per tenant
    assert document["service"]["events_accepted"] == 2000
    assert document["service"]["events_analyzed"] == 2000
    assert document["service"]["queued"] == 0
    assert document["reports"]


def test_serve_verify_async_oracle(full_character, capsys):
    assert main(["serve", "--events", "2000", "--tenants", "2",
                 "--alpha", "64", "--no-latency", "--async",
                 "--pump-threads", "2", "--verify-async",
                 "--format", "json"]) == 0
    document = json.loads(capsys.readouterr().out)
    verdict = document["verify_async"]
    assert verdict["ok"] is True
    assert verdict["producers"] == 2
    assert verdict["sync_reports"] == verdict["async_reports"]
    assert verdict["missing"] == [] and verdict["extra"] == []


def test_serve_json_document(full_character, capsys):
    assert main(["serve", "--events", "2000", "--tenants", "2",
                 "--alpha", "64", "--no-latency",
                 "--format", "json"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["exit_code"] == 0
    assert document["service"]["tenants"] == 2
    assert document["service"]["events_analyzed"] == 2000
    assert document["events_per_s"] > 0
    assert document["reports"]
    assert all(r["tenant"].startswith("tenant-")
               for r in document["reports"])


def test_serve_checkpoint_resume_round_trip(
    full_character, tmp_path, capsys
):
    checkpoints = str(tmp_path / "ckpt")
    assert main(["serve", "--events", "2000", "--tenants", "2",
                 "--alpha", "64", "--no-latency",
                 "--checkpoint-dir", checkpoints,
                 "--checkpoint-every", "500",
                 "--format", "json"]) == 0
    first = json.loads(capsys.readouterr().out)
    assert first["service"]["checkpoints_written"] > 0

    assert main(["serve", "--events", "2000", "--tenants", "2",
                 "--alpha", "64", "--no-latency",
                 "--checkpoint-dir", checkpoints, "--resume",
                 "--format", "json"]) == 0
    second = json.loads(capsys.readouterr().out)
    assert second["service"]["sessions_restored"] == 2
    # The restored watermark carries over: 2000 restored + 2000 new.
    assert second["service"]["events_analyzed"] == 4000


def test_serve_verify_checkpoint_oracle(full_character, capsys):
    assert main(["serve", "--events", "2000", "--tenants", "2",
                 "--alpha", "64", "--no-latency",
                 "--verify-checkpoint", "--cuts", "2",
                 "--format", "json"]) == 0
    document = json.loads(capsys.readouterr().out)
    verdict = document["verify_checkpoint"]
    assert verdict["ok"] is True
    assert len(verdict["cuts"]) == 2
    assert verdict["straight_reports"] == verdict["restored_reports"]
