"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_suite_command(capsys):
    assert main(["suite"]) == 0
    out = capsys.readouterr().out
    assert "1200 tests" in out
    assert "compute    517" in out


def test_demo_rejects_unknown_scenario(capsys):
    assert main(["demo", "bogus"]) == 2
    assert "unknown scenario" in capsys.readouterr().err


def test_evaluate_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["evaluate", "fig99"])


def test_demo_scenario_runs(full_character, capsys):
    # full_character warms the on-disk cache the CLI will read.
    assert main(["demo", "linuxbridge_failure"]) == 0
    out = capsys.readouterr().out
    assert "[PASS] linuxbridge_failure" in out


def test_evaluate_table1(full_character, capsys):
    assert main(["evaluate", "table1"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "compute" in out
