"""Tests for the fault-injection framework."""

import pytest

from repro.openstack.cloud import Cloud
from repro.openstack.config import CloudConfig


@pytest.fixture()
def quiet():
    return Cloud(seed=3, config=CloudConfig(heartbeats_enabled=False))


def test_unknown_api_key_rejected(quiet):
    with pytest.raises(KeyError):
        quiet.faults.inject_api_error("rest:nova:GET:/bogus", 500, "x")


def test_count_limits_injections(quiet):
    key = "rest:glance:GET:/v2/images"
    quiet.faults.inject_api_error(key, 500, "x", count=2)
    assert quiet.faults.forced_error(key) is not None
    assert quiet.faults.forced_error(key) is not None
    assert quiet.faults.forced_error(key) is None
    assert quiet.faults.injected_error_count == 2


def test_time_window_respected(quiet):
    key = "rest:glance:GET:/v2/images"
    quiet.faults.inject_api_error(key, 500, "x", count=None, start=10.0, end=20.0)
    assert quiet.faults.forced_error(key) is None       # t=0 < start
    quiet.sim.run(until=15.0)
    assert quiet.faults.forced_error(key) is not None   # inside window
    quiet.sim.run(until=25.0)
    assert quiet.faults.forced_error(key) is None       # past end


def test_clear_api_errors(quiet):
    key = "rest:glance:GET:/v2/images"
    quiet.faults.inject_api_error(key, 500, "x", count=None)
    quiet.faults.clear_api_errors(key)
    assert quiet.faults.forced_error(key) is None


def test_crash_everywhere_returns_nodes(quiet):
    nodes = quiet.faults.crash_everywhere("nova-compute")
    assert nodes == ["compute-1", "compute-2", "compute-3"]
    assert quiet.faults.crash_everywhere("nova-compute") == []  # already dead


def test_restart_process(quiet):
    quiet.faults.crash_process("compute-1", "libvirtd")
    assert not quiet.processes.is_alive("compute-1", "libvirtd")
    quiet.faults.restart_process("compute-1", "libvirtd")
    assert quiet.processes.is_alive("compute-1", "libvirtd")


def test_cpu_surge_applies_to_resources(quiet):
    quiet.faults.cpu_surge("neutron-ctl", 0.5, start=0.0, end=10.0)
    assert quiet.resources["neutron-ctl"].cpu_util(5.0) >= 0.5
    assert quiet.resources["neutron-ctl"].cpu_util(15.0) < 0.5


def test_fill_disk_leaves_requested_free(quiet):
    quiet.faults.fill_disk("glance-node", leave_free_gb=7.5)
    assert quiet.resources["glance-node"].disk_free_gb(0.0) == pytest.approx(7.5)
    # Filling again with a larger target must not free space.
    quiet.faults.fill_disk("glance-node", leave_free_gb=100.0)
    assert quiet.resources["glance-node"].disk_free_gb(0.0) == pytest.approx(7.5)


def test_latency_injection_is_per_node_path(quiet):
    quiet.faults.inject_latency("glance-node", 0.05)
    assert quiet.faults.extra_net_delay("ctrl", "glance-node") == pytest.approx(0.05)
    assert quiet.faults.extra_net_delay("glance-node", "ctrl") == pytest.approx(0.05)
    assert quiet.faults.extra_net_delay("ctrl", "nova-ctl") == 0.0


def test_latency_injections_stack(quiet):
    quiet.faults.inject_latency("glance-node", 0.05)
    quiet.faults.inject_latency("ctrl", 0.02)
    assert quiet.faults.extra_net_delay("ctrl", "glance-node") == pytest.approx(0.07)


def test_slow_service_validation(quiet):
    with pytest.raises(ValueError):
        quiet.faults.slow_service("glance", 0.0)


def test_memory_pressure(quiet):
    before = quiet.resources["ctrl"].mem_used_mb(0.0)
    quiet.faults.memory_pressure("ctrl", 10_000.0)
    assert quiet.resources["ctrl"].mem_used_mb(1.0) > before
