"""Tests for wire events and the tap bus."""

from repro.openstack.apis import ApiKind
from repro.openstack.wire import TapBus, WireEvent


def make_event(seq=1, src_node="ctrl", status=200, kind=ApiKind.REST):
    return WireEvent(
        seq=seq, api_key="rest:nova:GET:/v2.1/servers", kind=kind,
        method="GET", name="/v2.1/servers",
        src_service="horizon", src_node=src_node, src_ip="10.0.0.10",
        dst_service="nova", dst_node="nova-ctl", dst_ip="10.0.0.11",
        ts_request=1.0, ts_response=1.01, status=status,
    )


def test_latency_property():
    assert abs(make_event().latency - 0.01) < 1e-9


def test_error_threshold():
    assert not make_event(status=200).error
    assert not make_event(status=399).error
    assert make_event(status=400).error
    assert make_event(status=503).error


def test_is_rest():
    assert make_event().is_rest
    assert not make_event(kind=ApiKind.RPC).is_rest


def test_node_tap_receives_only_its_traffic():
    bus = TapBus()
    seen_ctrl, seen_other = [], []
    bus.attach("ctrl", seen_ctrl.append)
    bus.attach("nova-ctl", seen_other.append)
    bus.emit(make_event(src_node="ctrl"))
    assert len(seen_ctrl) == 1
    assert len(seen_other) == 0


def test_global_tap_sees_everything():
    bus = TapBus()
    seen = []
    bus.attach_global(seen.append)
    bus.emit(make_event(src_node="ctrl"))
    bus.emit(make_event(seq=2, src_node="nova-ctl"))
    assert len(seen) == 2
    assert bus.emitted == 2


def test_detach_all():
    bus = TapBus()
    seen = []
    bus.attach_global(seen.append)
    bus.detach_all()
    bus.emit(make_event())
    assert not seen


def test_str_rendering():
    text = str(make_event())
    assert "GET" in text
    assert "horizon->nova" in text
