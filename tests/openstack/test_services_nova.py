"""Tests for the Nova service: VM lifecycle and failure modes."""

import pytest

from repro.openstack.cloud import Cloud
from repro.openstack.config import CloudConfig
from repro.openstack.services.nova import NO_VALID_HOST, SERVERS


@pytest.fixture()
def quiet():
    return Cloud(seed=5, config=CloudConfig(heartbeats_enabled=False))


def run_op(cloud, generator):
    result = []

    def proc():
        value = yield from generator
        result.append(value)

    process = cloud.sim.spawn(proc())
    cloud.run_until([process])
    return result[0]


def boot(cloud, ctx, image_id="img-x", wait=True):
    """Create an image record and boot a server; returns server id."""

    def script():
        image = yield from ctx.rest("glance", "POST", "/v2/images", {"name": "i"})
        yield from ctx.rest("glance", "PUT", "/v2/images/{id}/file",
                            {"id": image.data["id"], "size_gb": 1.0})
        response = yield from ctx.rest("nova", "POST", "/v2.1/servers",
                                       {"name": "vm", "image": image.data["id"]})
        return response.data["server"]["id"]

    server_id = run_op(cloud, script())
    if wait:
        cloud.settle(3.0)
    return server_id


def test_boot_reaches_active(quiet):
    ctx = quiet.client_context()
    server_id = boot(quiet, ctx)
    record = quiet.db.peek(SERVERS, server_id)
    assert record["status"] == "ACTIVE"
    assert record["node"] in ("compute-1", "compute-2", "compute-3")
    assert len(record["ports"]) == 1


def test_boot_creates_neutron_port(quiet):
    ctx = quiet.client_context()
    server_id = boot(quiet, ctx)
    record = quiet.db.peek(SERVERS, server_id)
    port = quiet.db.peek("neutron:ports", record["ports"][0])
    assert port is not None
    assert port["status"] == "ACTIVE"
    assert port["device_id"] == server_id


def test_no_compute_service_means_no_valid_host(quiet):
    quiet.faults.crash_everywhere("nova-compute")
    ctx = quiet.client_context()
    server_id = boot(quiet, ctx)
    record = quiet.db.peek(SERVERS, server_id)
    assert record["status"] == "ERROR"
    assert record["fault"] == NO_VALID_HOST


def test_linuxbridge_down_fails_boot_with_no_valid_host(quiet):
    quiet.faults.crash_everywhere("neutron-plugin-linuxbridge-agent")
    ctx = quiet.client_context()
    server_id = boot(quiet, ctx)
    record = quiet.db.peek(SERVERS, server_id)
    assert record["status"] == "ERROR"
    assert record["fault"] == NO_VALID_HOST
    # Unlike the dead-compute case, nova-compute itself is healthy.
    assert quiet.processes.is_alive("compute-1", "nova-compute")


def test_libvirt_down_fails_boot(quiet):
    for node in ("compute-1", "compute-2", "compute-3"):
        quiet.faults.crash_process(node, "libvirtd")
    ctx = quiet.client_context()
    server_id = boot(quiet, ctx)
    record = quiet.db.peek(SERVERS, server_id)
    assert record["status"] == "ERROR"
    assert "Hypervisor" in record["fault"]


def test_missing_image_fails_boot(quiet):
    ctx = quiet.client_context()

    def script():
        response = yield from ctx.rest("nova", "POST", "/v2.1/servers",
                                       {"name": "vm", "image": "img-missing"})
        return response.data["server"]["id"]

    server_id = run_op(quiet, script())
    quiet.settle(3.0)
    record = quiet.db.peek(SERVERS, server_id)
    assert record["status"] == "ERROR"
    assert "could not be fetched" in record["fault"]


def test_show_errored_server_returns_500_with_fault(quiet):
    quiet.faults.crash_everywhere("nova-compute")
    ctx = quiet.client_context()
    server_id = boot(quiet, ctx)
    response = run_op(quiet, ctx.rest("nova", "GET", "/v2.1/servers/{id}",
                                      {"id": server_id}))
    assert response.status == 500
    assert "No valid host" in response.body


def test_show_missing_server_404(quiet):
    ctx = quiet.client_context()
    response = run_op(quiet, ctx.rest("nova", "GET", "/v2.1/servers/{id}",
                                      {"id": "nope"}))
    assert response.status == 404


def test_delete_server_removes_record_and_port(quiet):
    ctx = quiet.client_context()
    server_id = boot(quiet, ctx)
    port_id = quiet.db.peek(SERVERS, server_id)["ports"][0]
    run_op(quiet, ctx.rest("nova", "DELETE", "/v2.1/servers/{id}",
                           {"id": server_id}))
    quiet.settle(3.0)
    assert quiet.db.peek(SERVERS, server_id) is None
    assert quiet.db.peek("neutron:ports", port_id) is None


def test_scheduler_round_robins_hosts(quiet):
    ctx = quiet.client_context()
    nodes = {quiet.db.peek(SERVERS, boot(quiet, ctx))["node"] for _ in range(6)}
    assert len(nodes) == 3


def test_action_transitions(quiet):
    ctx = quiet.client_context()
    server_id = boot(quiet, ctx)
    for action, state in (
        ("os-stop", "SHUTOFF"), ("os-start", "ACTIVE"),
        ("pause", "PAUSED"), ("unpause", "ACTIVE"),
        ("suspend", "SUSPENDED"), ("resume", "ACTIVE"),
        ("shelve", "SHELVED_OFFLOADED"), ("unshelve", "ACTIVE"),
    ):
        response = run_op(quiet, ctx.rest(
            "nova", "POST", f"/v2.1/servers/{{id}}/action#{action}",
            {"id": server_id}))
        assert response.ok, action
        quiet.settle(1.0)  # the compute agent applies the transition
        assert quiet.db.peek(SERVERS, server_id)["status"] == state, action


def test_action_on_errored_server_conflicts(quiet):
    quiet.faults.crash_everywhere("nova-compute")
    ctx = quiet.client_context()
    server_id = boot(quiet, ctx)
    response = run_op(quiet, ctx.rest(
        "nova", "POST", "/v2.1/servers/{id}/action#reboot", {"id": server_id}))
    assert response.status == 409


def test_resize_and_confirm(quiet):
    ctx = quiet.client_context()
    server_id = boot(quiet, ctx)
    response = run_op(quiet, ctx.rest(
        "nova", "POST", "/v2.1/servers/{id}/action#resize", {"id": server_id}))
    assert response.ok
    assert quiet.db.peek(SERVERS, server_id)["status"] == "VERIFY_RESIZE"
    run_op(quiet, ctx.rest(
        "nova", "POST", "/v2.1/servers/{id}/action#confirmResize",
        {"id": server_id}))
    assert quiet.db.peek(SERVERS, server_id)["status"] == "ACTIVE"


def test_live_migration_moves_host(quiet):
    ctx = quiet.client_context()
    server_id = boot(quiet, ctx)
    before = quiet.db.peek(SERVERS, server_id)["node"]
    response = run_op(quiet, ctx.rest(
        "nova", "POST", "/v2.1/servers/{id}/action#os-migrateLive",
        {"id": server_id}))
    assert response.ok
    after = quiet.db.peek(SERVERS, server_id)["node"]
    assert after != before


def test_create_image_action_registers_snapshot(quiet):
    ctx = quiet.client_context()
    server_id = boot(quiet, ctx)
    images_before = quiet.db.count("glance:images")
    response = run_op(quiet, ctx.rest(
        "nova", "POST", "/v2.1/servers/{id}/action#createImage",
        {"id": server_id}))
    assert response.ok
    quiet.settle(3.0)
    assert quiet.db.count("glance:images") == images_before + 1


def test_attach_and_detach_interface(quiet):
    ctx = quiet.client_context()
    server_id = boot(quiet, ctx)
    response = run_op(quiet, ctx.rest(
        "nova", "POST", "/v2.1/servers/{id}/os-interface", {"id": server_id}))
    assert response.ok
    port_id = response.data["port_id"]
    assert len(quiet.db.peek(SERVERS, server_id)["ports"]) == 2
    run_op(quiet, ctx.rest(
        "nova", "DELETE", "/v2.1/servers/{id}/os-interface/{port_id}",
        {"id": server_id, "port_id": port_id}))
    assert len(quiet.db.peek(SERVERS, server_id)["ports"]) == 1


def test_external_events_endpoint(quiet):
    ctx = quiet.client_context()
    server_id = boot(quiet, ctx)
    response = run_op(quiet, ctx.rest(
        "nova", "POST", "/v2.1/os-server-external-events",
        {"server_id": server_id, "event": "network-vif-plugged"}))
    assert response.ok
    assert quiet.db.peek(SERVERS, server_id)["vif_plugged"] is True


def test_os_services_reflects_process_table(quiet):
    ctx = quiet.client_context()
    response = run_op(quiet, ctx.rest("nova", "GET", "/v2.1/os-services"))
    states = {s["host"]: s["state"] for s in response.data["services"]}
    assert states == {"compute-1": "up", "compute-2": "up", "compute-3": "up"}
    quiet.faults.crash_process("compute-2", "nova-compute")
    response = run_op(quiet, ctx.rest("nova", "GET", "/v2.1/os-services"))
    states = {s["host"]: s["state"] for s in response.data["services"]}
    assert states["compute-2"] == "down"


def test_boot_from_volume(quiet):
    ctx = quiet.client_context()

    def script():
        volume = yield from ctx.rest("cinder", "POST", "/v2/{tenant}/volumes",
                                     {"size_gb": 4.0})
        yield from ctx.sleep(0.5)  # backend provisioning
        response = yield from ctx.rest(
            "nova", "POST", "/v2.1/servers",
            {"name": "bfv", "boot_volume": volume.data["id"]})
        return volume.data["id"], response.data["server"]["id"]

    result = []

    def proc():
        value = yield from script()
        result.append(value)

    process = quiet.sim.spawn(proc())
    quiet.run_until([process])
    quiet.settle(3.0)
    volume_id, server_id = result[0]
    record = quiet.db.peek(SERVERS, server_id)
    assert record["status"] == "ACTIVE"
    assert volume_id in record["volumes"]
    assert quiet.db.peek("cinder:volumes", volume_id)["status"] == "in-use"


def test_boot_from_volume_with_dead_backend_fails(quiet):
    quiet.faults.crash_process("cinder-node", "cinder-volume")
    ctx = quiet.client_context()

    def proc():
        response = yield from ctx.rest(
            "nova", "POST", "/v2.1/servers",
            {"name": "bfv", "boot_volume": "vol-missing"})
        return response.data["server"]["id"]

    result = []

    def outer():
        value = yield from proc()
        result.append(value)

    process = quiet.sim.spawn(outer())
    quiet.run_until([process])
    quiet.settle(3.0)
    record = quiet.db.peek(SERVERS, result[0])
    assert record["status"] == "ERROR"
    assert "Boot volume" in record["fault"]


def test_terminate_detaches_attached_volumes(quiet):
    ctx = quiet.client_context()

    def script():
        image = yield from ctx.rest("glance", "POST", "/v2/images", {})
        yield from ctx.rest("glance", "PUT", "/v2/images/{id}/file",
                            {"id": image.data["id"], "size_gb": 1.0})
        server = yield from ctx.rest("nova", "POST", "/v2.1/servers",
                                     {"image": image.data["id"]})
        server_id = server.data["server"]["id"]
        yield from ctx.sleep(2.0)
        volume = yield from ctx.rest("cinder", "POST", "/v2/{tenant}/volumes", {})
        yield from ctx.sleep(0.5)
        volume_id = volume.data["id"]
        yield from ctx.rest("cinder", "POST",
                            "/v2/{tenant}/volumes/{id}/action#os-reserve",
                            {"id": volume_id})
        attach = yield from ctx.rest(
            "nova", "POST", "/v2.1/servers/{id}/os-volume_attachments",
            {"id": server_id, "volume_id": volume_id})
        assert attach.ok, attach.body
        yield from ctx.rest("nova", "DELETE", "/v2.1/servers/{id}",
                            {"id": server_id})
        return volume_id

    result = []

    def outer():
        value = yield from script()
        result.append(value)

    process = quiet.sim.spawn(outer())
    quiet.run_until([process])
    quiet.settle(3.0)
    volume = quiet.db.peek("cinder:volumes", result[0])
    assert volume["status"] == "available"
