"""Tests for the assembled Cloud."""

import pytest

from repro.sim import Timeout
from repro.openstack.broker import Broker
from repro.openstack.cloud import Cloud
from repro.openstack.config import CloudConfig


def test_all_services_deployed(cloud):
    assert set(cloud.services) == {
        "keystone", "nova", "neutron", "glance", "cinder", "swift",
    }


def test_processes_installed_from_topology(cloud):
    assert cloud.processes.is_alive("ctrl", "mysql")
    assert cloud.processes.is_alive("ctrl", "rabbitmq")
    assert cloud.processes.is_alive("compute-1", "nova-compute")
    assert len(cloud.processes) == sum(
        len(node.processes) for node in cloud.topology.nodes
    )


def test_resources_per_node(cloud):
    assert set(cloud.resources) == set(cloud.topology.node_names())


def test_heartbeats_emit_noise_rpcs():
    cloud = Cloud(seed=13)  # heartbeats on by default
    events = []
    cloud.taps.attach_global(events.append)
    cloud.sim.run(until=25.0)
    heartbeats = [e for e in events if e.noise and e.name == "report_state"]
    assert len(heartbeats) >= 6  # 3 computes x 2 agents + cinder-volume
    sources = {e.src_node for e in heartbeats}
    assert "compute-1" in sources


def test_heartbeats_stop_with_dead_process():
    cloud = Cloud(seed=13)
    events = []
    cloud.taps.attach_global(events.append)
    cloud.faults.crash_process("compute-1", "nova-compute")
    cloud.sim.run(until=25.0)
    nova_hb = [e for e in events
               if e.noise and e.name == "report_state"
               and e.src_node == "compute-1" and e.dst_service == "nova"]
    assert nova_hb == []


def test_stop_heartbeats_allows_drain():
    cloud = Cloud(seed=13)
    cloud.stop_heartbeats()
    cloud.sim.run()  # terminates because nothing is pending forever
    assert cloud.sim.pending == 0


def test_quiet_config_has_no_heartbeats(quiet_cloud):
    events = []
    quiet_cloud.taps.attach_global(events.append)
    quiet_cloud.sim.run(until=30.0)
    assert events == []


def test_run_until_times_out(quiet_cloud):
    def forever():
        while True:
            yield Timeout(1.0)

    process = quiet_cloud.sim.spawn(forever())
    with pytest.raises(TimeoutError):
        quiet_cloud.run_until([process], limit=5.0)


def test_settle_advances_clock(quiet_cloud):
    before = quiet_cloud.sim.now
    quiet_cloud.settle(2.5)
    assert quiet_cloud.sim.now == pytest.approx(before + 2.5)


def test_client_context_defaults(cloud):
    ctx = cloud.client_context()
    assert ctx.node == "ctrl"
    assert ctx.service == "client"
    assert ctx.tenant == "demo"


def test_broker_message_ids_unique():
    cloud = Cloud(seed=1)
    ids = {cloud.broker.new_message_id() for _ in range(100)}
    assert len(ids) == 100


def test_broker_hop_delay_includes_queueing():
    cloud = Cloud(seed=1)
    direct = cloud.topology.latency("nova-ctl", "compute-1")
    via_broker = cloud.broker.hop_delay("nova-ctl", "compute-1")
    assert via_broker > direct
    assert via_broker >= Broker.QUEUE_DELAY


def test_broker_unavailable_when_rabbitmq_dead():
    cloud = Cloud(seed=1)
    assert cloud.broker.available
    cloud.faults.crash_process("ctrl", "rabbitmq")
    assert not cloud.broker.available


def test_database_unavailable_when_mysql_dead(quiet_cloud):
    """With MySQL down even authentication fails: the Keystone leg
    raises, exactly like a python-client that cannot get a token."""
    from repro.openstack.errors import ApiError

    quiet_cloud.faults.crash_process("ctrl", "mysql")
    ctx = quiet_cloud.client_context()
    caught = []

    def proc():
        try:
            yield from ctx.rest("glance", "GET", "/v2/images")
        except ApiError as exc:
            caught.append(exc)

    process = quiet_cloud.sim.spawn(proc())
    quiet_cloud.run_until([process])
    assert caught
    assert caught[0].status == 503
    assert "MySQL" in caught[0].message


def test_database_error_midway_returns_500_series(quiet_cloud):
    """With MySQL dying *after* authentication, the service answers an
    error response instead of raising."""
    ctx = quiet_cloud.client_context()
    result = []

    def proc():
        first = yield from ctx.rest("glance", "GET", "/v2/images")
        quiet_cloud.faults.crash_process("ctrl", "mysql")
        second = yield from ctx.rest("glance", "GET", "/v2/images")
        result.append((first, second))

    process = quiet_cloud.sim.spawn(proc())
    quiet_cloud.run_until([process])
    first, second = result[0]
    assert first.ok
    assert second.status == 503
    # Either the DB error surfaces directly, or the (also DB-backed)
    # Keystone validation fails first — both are faithful manifestations.
    assert "MySQL" in second.body or "Keystone" in second.body
