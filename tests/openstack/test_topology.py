"""Tests for the deployment topology."""

import pytest

from repro.openstack.topology import NodeSpec, Topology, default_topology


def test_default_topology_shape():
    topology = default_topology()
    assert len(topology.nodes) == 8  # 5 control + 3 compute
    assert len(topology.compute_nodes()) == 3


def test_custom_compute_count():
    assert len(default_topology(compute_nodes=5).compute_nodes()) == 5


def test_at_least_one_compute_required():
    with pytest.raises(ValueError):
        default_topology(compute_nodes=0)


def test_service_homes():
    topology = default_topology()
    assert topology.home_of("nova") == "nova-ctl"
    assert topology.home_of("neutron") == "neutron-ctl"
    assert topology.home_of("glance") == "glance-node"
    assert topology.home_of("swift") == "glance-node"
    assert topology.home_of("cinder") == "cinder-node"
    assert topology.home_of("keystone") == "ctrl"
    assert topology.home_of("horizon") == "ctrl"


def test_unknown_service_raises():
    with pytest.raises(KeyError):
        default_topology().home_of("heat")


def test_latency_local_vs_remote():
    topology = default_topology()
    assert topology.latency("ctrl", "ctrl") < topology.latency("ctrl", "nova-ctl")


def test_compute_nodes_run_required_processes():
    topology = default_topology()
    for node in topology.compute_nodes():
        assert "nova-compute" in node.processes
        assert "neutron-plugin-linuxbridge-agent" in node.processes
        assert "libvirtd" in node.processes
        assert "ntp" in node.processes


def test_control_plane_dependencies_present():
    ctrl = default_topology().node("ctrl")
    assert "mysql" in ctrl.processes
    assert "rabbitmq" in ctrl.processes


def test_unique_ips():
    topology = default_topology()
    ips = [node.ip for node in topology.nodes]
    assert len(ips) == len(set(ips))


def test_duplicate_node_names_rejected():
    with pytest.raises(ValueError):
        Topology(nodes=[NodeSpec("a", "1.1.1.1"), NodeSpec("a", "1.1.1.2")])


def test_node_names_order():
    topology = default_topology()
    assert topology.node_names()[0] == "ctrl"
    assert topology.node_names()[-1] == "compute-3"
