"""Tests for the API catalog."""

import pytest

from repro.openstack.apis import ApiKind
from repro.openstack.catalog import (
    PUBLIC_REST_API_COUNT,
    ApiCatalog,
    build_catalog,
    default_catalog,
)


def test_public_rest_count_matches_paper():
    catalog = build_catalog()
    assert len(catalog.rest_apis) == PUBLIC_REST_API_COUNT == 643


def test_rpc_apis_present():
    catalog = build_catalog()
    assert len(catalog.rpc_apis) > 90


def test_build_is_deterministic():
    a = build_catalog()
    b = build_catalog()
    assert [api.key for api in a.apis] == [api.key for api in b.apis]


def test_no_duplicate_keys():
    catalog = build_catalog()
    keys = [api.key for api in catalog.apis]
    assert len(keys) == len(set(keys))


def test_default_catalog_is_shared():
    assert default_catalog() is default_catalog()


def test_core_workflow_apis_exist():
    catalog = build_catalog()
    for service, method, name in (
        ("nova", "POST", "/v2.1/servers"),
        ("nova", "GET", "/v2.1/servers/{id}"),
        ("neutron", "POST", "/v2.0/ports.json"),
        ("glance", "GET", "/v2/images/{id}"),
        ("glance", "PUT", "/v2/images/{id}/file"),
        ("keystone", "POST", "/v3/auth/tokens"),
        ("cinder", "POST", "/v2/{tenant}/volumes"),
        ("swift", "PUT", "/v1/{account}/{container}/{object}"),
        ("nova", "POST", "/v2.1/os-server-external-events"),
    ):
        api = catalog.find_rest(service, method, name)
        assert api.service == service


def test_core_rpcs_exist():
    catalog = build_catalog()
    for service, name in (
        ("nova", "build_and_run_instance"),
        ("nova", "select_destinations"),
        ("neutron", "get_devices_details_list"),
        ("neutron", "security_group_info_for_devices"),
        ("neutron", "update_device_up"),
        ("cinder", "create_volume"),
    ):
        api = catalog.find_rpc(service, name)
        assert api.kind is ApiKind.RPC


def test_heartbeats_flagged_as_noise():
    catalog = build_catalog()
    assert catalog.find_rpc("nova", "report_state").noise
    assert catalog.find_rpc("neutron", "report_state").noise


def test_keystone_auth_flagged_as_noise():
    catalog = build_catalog()
    assert catalog.find_rest("keystone", "POST", "/v3/auth/tokens").noise
    assert catalog.find_rest("keystone", "GET", "/v3/auth/tokens").noise


def test_missing_lookup_raises():
    catalog = build_catalog()
    with pytest.raises(KeyError):
        catalog.find_rest("nova", "GET", "/no/such/path")
    with pytest.raises(KeyError):
        catalog.find_rpc("nova", "no_such_method")
    with pytest.raises(KeyError):
        catalog.get("bogus-key")


def test_add_duplicate_rejected():
    catalog = build_catalog()
    with pytest.raises(ValueError):
        catalog.add(catalog.apis[0])


def test_of_service_partition():
    catalog = build_catalog()
    services = {"nova", "neutron", "glance", "cinder", "keystone", "swift"}
    total = sum(len(catalog.of_service(s)) for s in services)
    assert total == len(catalog)


def test_every_service_has_rest_apis():
    catalog = build_catalog()
    for service in ("nova", "neutron", "glance", "cinder", "keystone", "swift"):
        rest = [a for a in catalog.of_service(service) if a.kind is ApiKind.REST]
        assert len(rest) >= 14, service
