"""Tests for the Neutron service: networks, ports, binding, agents."""

import pytest

from repro.openstack.cloud import Cloud
from repro.openstack.config import CloudConfig


@pytest.fixture()
def quiet():
    return Cloud(seed=6, config=CloudConfig(heartbeats_enabled=False))


def run_op(cloud, generator):
    result = []

    def proc():
        value = yield from generator
        result.append(value)

    process = cloud.sim.spawn(proc())
    cloud.run_until([process])
    return result[0]


def test_network_crud(quiet):
    ctx = quiet.client_context()
    created = run_op(quiet, ctx.rest("neutron", "POST", "/v2.0/networks.json",
                                     {"name": "net1"}))
    network_id = created.data["id"]
    shown = run_op(quiet, ctx.rest("neutron", "GET", "/v2.0/networks.json/{id}",
                                   {"id": network_id}))
    assert shown.data["network"]["name"] == "net1"
    deleted = run_op(quiet, ctx.rest("neutron", "DELETE",
                                     "/v2.0/networks.json/{id}",
                                     {"id": network_id}))
    assert deleted.ok


def test_network_delete_with_ports_conflicts(quiet):
    ctx = quiet.client_context()
    network = run_op(quiet, ctx.rest("neutron", "POST", "/v2.0/networks.json", {}))
    network_id = network.data["id"]
    run_op(quiet, ctx.rest("neutron", "POST", "/v2.0/ports.json",
                           {"network_id": network_id}))
    response = run_op(quiet, ctx.rest("neutron", "DELETE",
                                      "/v2.0/networks.json/{id}",
                                      {"id": network_id}))
    assert response.status == 409


def test_port_binding_succeeds_with_live_agent(quiet):
    ctx = quiet.client_context()
    response = run_op(quiet, ctx.rest("neutron", "POST", "/v2.0/ports.json",
                                      {"binding_host": "compute-1"}))
    assert response.data["binding"] == "ok"


def test_port_binding_fails_with_dead_agent(quiet):
    quiet.faults.crash_process("compute-1", "neutron-plugin-linuxbridge-agent")
    ctx = quiet.client_context()
    response = run_op(quiet, ctx.rest("neutron", "POST", "/v2.0/ports.json",
                                      {"binding_host": "compute-1"}))
    assert response.data["binding"] == "failed"


def test_port_binding_on_unknown_host_is_unbound(quiet):
    ctx = quiet.client_context()
    response = run_op(quiet, ctx.rest("neutron", "POST", "/v2.0/ports.json",
                                      {"binding_host": "nova-ctl"}))
    # No L2 agent installed there: port is created but not bound.
    assert response.data["binding"] == "ok"


def test_router_interface_lifecycle(quiet):
    ctx = quiet.client_context()
    router = run_op(quiet, ctx.rest("neutron", "POST", "/v2.0/routers.json", {}))
    router_id = router.data["id"]
    run_op(quiet, ctx.rest("neutron", "PUT",
                           "/v2.0/routers/{id}/add_router_interface",
                           {"id": router_id, "subnet_id": "sub-1"}))
    conflict = run_op(quiet, ctx.rest("neutron", "DELETE",
                                      "/v2.0/routers.json/{id}",
                                      {"id": router_id}))
    assert conflict.status == 409
    run_op(quiet, ctx.rest("neutron", "PUT",
                           "/v2.0/routers/{id}/remove_router_interface",
                           {"id": router_id, "subnet_id": "sub-1"}))
    deleted = run_op(quiet, ctx.rest("neutron", "DELETE",
                                     "/v2.0/routers.json/{id}",
                                     {"id": router_id}))
    assert deleted.ok


def test_floatingip_associate(quiet):
    ctx = quiet.client_context()
    fip = run_op(quiet, ctx.rest("neutron", "POST", "/v2.0/floatingips.json", {}))
    response = run_op(quiet, ctx.rest("neutron", "PUT",
                                      "/v2.0/floatingips.json/{id}",
                                      {"id": fip.data["id"], "port_id": "p-1"}))
    assert response.data["floatingip"]["status"] == "ACTIVE"


def test_secgroup_rules_accumulate(quiet):
    ctx = quiet.client_context()
    sg = run_op(quiet, ctx.rest("neutron", "POST",
                                "/v2.0/security-groups.json", {}))
    for _ in range(3):
        run_op(quiet, ctx.rest("neutron", "POST",
                               "/v2.0/security-group-rules.json",
                               {"security_group_id": sg.data["id"]}))
    quiet.settle(1.0)
    record = quiet.db.peek("neutron:security-groups", sg.data["id"])
    assert len(record["rules"]) == 3


def test_agents_listing_reflects_liveness(quiet):
    ctx = quiet.client_context()
    quiet.faults.crash_process("compute-3", "neutron-plugin-linuxbridge-agent")
    response = run_op(quiet, ctx.rest("neutron", "GET", "/v2.0/agents"))
    alive = {a["host"]: a["alive"] for a in response.data["agents"]}
    assert alive["compute-1"] is True
    assert alive["compute-3"] is False


def test_update_device_up_posts_external_event_to_nova(quiet):
    events = []
    quiet.taps.attach_global(events.append)
    ctx = quiet.client_context()
    port = run_op(quiet, ctx.rest("neutron", "POST", "/v2.0/ports.json", {}))
    run_op(quiet, ctx.rpc("neutron", "update_device_up",
                          {"port_id": port.data["id"], "server_id": "srv-1"}))
    callbacks = [e for e in events if e.name == "/v2.1/os-server-external-events"]
    assert len(callbacks) == 1
    assert callbacks[0].src_service == "neutron"
    assert callbacks[0].dst_service == "nova"


def test_devices_details_latency_scales_with_cpu(quiet):
    ctx = quiet.client_context()
    events = []
    quiet.taps.attach_global(events.append)
    run_op(quiet, ctx.rpc("neutron", "get_devices_details_list", {"devices": []}))
    baseline = events[-1].latency
    quiet.faults.cpu_surge("neutron-ctl", 0.7)
    run_op(quiet, ctx.rpc("neutron", "get_devices_details_list", {"devices": []}))
    assert events[-1].latency > baseline * 1.5
