"""Tests for Glance, Cinder and Swift services."""

import pytest

from repro.openstack.cloud import Cloud
from repro.openstack.config import CloudConfig


@pytest.fixture()
def quiet():
    return Cloud(seed=9, config=CloudConfig(heartbeats_enabled=False))


def run_op(cloud, generator):
    result = []

    def proc():
        value = yield from generator
        result.append(value)

    process = cloud.sim.spawn(proc())
    cloud.run_until([process])
    return result[0]


# ---------------------------------------------------------------------------
# Glance
# ---------------------------------------------------------------------------

def _register_image(quiet, ctx):
    response = run_op(quiet, ctx.rest("glance", "POST", "/v2/images",
                                      {"name": "img"}))
    return response.data["id"]


def test_image_upload_consumes_disk(quiet):
    ctx = quiet.client_context()
    image_id = _register_image(quiet, ctx)
    free_before = quiet.resources["glance-node"].disk_free_gb(quiet.sim.now)
    response = run_op(quiet, ctx.rest("glance", "PUT", "/v2/images/{id}/file",
                                      {"id": image_id, "size_gb": 3.0}))
    assert response.ok
    free_after = quiet.resources["glance-node"].disk_free_gb(quiet.sim.now)
    assert free_after == pytest.approx(free_before - 3.0)
    record = quiet.db.peek("glance:images", image_id)
    assert record["status"] == "active"


def test_image_upload_413_when_disk_low(quiet):
    quiet.faults.fill_disk("glance-node", leave_free_gb=6.0)
    ctx = quiet.client_context()
    image_id = _register_image(quiet, ctx)
    response = run_op(quiet, ctx.rest("glance", "PUT", "/v2/images/{id}/file",
                                      {"id": image_id, "size_gb": 2.0}))
    assert response.status == 413
    assert "Request Entity Too Large" in response.body


def test_image_delete_releases_disk(quiet):
    ctx = quiet.client_context()
    image_id = _register_image(quiet, ctx)
    run_op(quiet, ctx.rest("glance", "PUT", "/v2/images/{id}/file",
                           {"id": image_id, "size_gb": 2.0}))
    free_mid = quiet.resources["glance-node"].disk_free_gb(quiet.sim.now)
    run_op(quiet, ctx.rest("glance", "DELETE", "/v2/images/{id}",
                           {"id": image_id}))
    assert quiet.resources["glance-node"].disk_free_gb(quiet.sim.now) == pytest.approx(
        free_mid + 2.0
    )


def test_image_download_requires_data(quiet):
    ctx = quiet.client_context()
    image_id = _register_image(quiet, ctx)
    response = run_op(quiet, ctx.rest("glance", "GET", "/v2/images/{id}/file",
                                      {"id": image_id}))
    assert response.status == 409


def test_image_deactivate_reactivate(quiet):
    ctx = quiet.client_context()
    image_id = _register_image(quiet, ctx)
    run_op(quiet, ctx.rest("glance", "POST",
                           "/v2/images/{id}/actions/deactivate", {"id": image_id}))
    assert quiet.db.peek("glance:images", image_id)["status"] == "deactivated"
    run_op(quiet, ctx.rest("glance", "POST",
                           "/v2/images/{id}/actions/reactivate", {"id": image_id}))
    assert quiet.db.peek("glance:images", image_id)["status"] == "active"


# ---------------------------------------------------------------------------
# Cinder
# ---------------------------------------------------------------------------

def _create_volume(quiet, ctx, size_gb=1.0):
    response = run_op(quiet, ctx.rest("cinder", "POST", "/v2/{tenant}/volumes",
                                      {"size_gb": size_gb}))
    quiet.settle(1.0)  # async backend provisioning
    return response.data["id"]


def test_volume_becomes_available(quiet):
    ctx = quiet.client_context()
    volume_id = _create_volume(quiet, ctx)
    assert quiet.db.peek("cinder:volumes", volume_id)["status"] == "available"


def test_volume_error_when_backend_down(quiet):
    quiet.faults.crash_process("cinder-node", "cinder-volume")
    ctx = quiet.client_context()
    volume_id = _create_volume(quiet, ctx)
    record = quiet.db.peek("cinder:volumes", volume_id)
    assert record["status"] == "error"
    assert "cinder-volume is down" in record["fault"]


def test_show_errored_volume_returns_500(quiet):
    quiet.faults.crash_process("cinder-node", "cinder-volume")
    ctx = quiet.client_context()
    volume_id = _create_volume(quiet, ctx)
    response = run_op(quiet, ctx.rest("cinder", "GET", "/v2/{tenant}/volumes/{id}",
                                      {"id": volume_id}))
    assert response.status == 500


def test_volume_attach_detach_cycle(quiet):
    ctx = quiet.client_context()
    volume_id = _create_volume(quiet, ctx)
    for action, state in (("os-reserve", "attaching"), ("os-attach", "in-use"),
                          ("os-detach", "available")):
        response = run_op(quiet, ctx.rest(
            "cinder", "POST", f"/v2/{{tenant}}/volumes/{{id}}/action#{action}",
            {"id": volume_id}))
        assert response.ok
        assert quiet.db.peek("cinder:volumes", volume_id)["status"] == state


def test_attached_volume_cannot_be_deleted(quiet):
    ctx = quiet.client_context()
    volume_id = _create_volume(quiet, ctx)
    run_op(quiet, ctx.rest("cinder", "POST",
                           "/v2/{tenant}/volumes/{id}/action#os-attach",
                           {"id": volume_id}))
    response = run_op(quiet, ctx.rest("cinder", "DELETE",
                                      "/v2/{tenant}/volumes/{id}",
                                      {"id": volume_id}))
    assert response.status == 400


def test_snapshot_lifecycle(quiet):
    ctx = quiet.client_context()
    volume_id = _create_volume(quiet, ctx)
    response = run_op(quiet, ctx.rest("cinder", "POST", "/v2/{tenant}/snapshots",
                                      {"volume_id": volume_id}))
    snapshot_id = response.data["id"]
    quiet.settle(1.0)
    assert quiet.db.peek("cinder:snapshots", snapshot_id)["status"] == "available"


def test_backup_lands_in_swift(quiet):
    ctx = quiet.client_context()
    volume_id = _create_volume(quiet, ctx)
    objects_before = quiet.db.count("swift:objects")
    run_op(quiet, ctx.rest("cinder", "POST", "/v2/{tenant}/backups",
                           {"volume_id": volume_id}))
    quiet.settle(1.0)
    assert quiet.db.count("swift:objects") == objects_before + 1


def test_volume_upload_to_image(quiet):
    ctx = quiet.client_context()
    volume_id = _create_volume(quiet, ctx)
    images_before = quiet.db.count("glance:images")
    response = run_op(quiet, ctx.rest(
        "cinder", "POST",
        "/v2/{tenant}/volumes/{id}/action#os-volume_upload_image",
        {"id": volume_id}))
    assert response.ok
    assert quiet.db.count("glance:images") == images_before + 1


# ---------------------------------------------------------------------------
# Swift
# ---------------------------------------------------------------------------

def test_swift_object_lifecycle(quiet):
    ctx = quiet.client_context()
    run_op(quiet, ctx.rest("swift", "PUT", "/v1/{account}/{container}",
                           {"container": "c1"}))
    run_op(quiet, ctx.rest("swift", "PUT", "/v1/{account}/{container}/{object}",
                           {"container": "c1", "object": "o1", "size_gb": 0.2}))
    head = run_op(quiet, ctx.rest("swift", "HEAD",
                                  "/v1/{account}/{container}/{object}",
                                  {"container": "c1", "object": "o1"}))
    assert head.data["size_gb"] == pytest.approx(0.2)
    conflict = run_op(quiet, ctx.rest("swift", "DELETE", "/v1/{account}/{container}",
                                      {"container": "c1"}))
    assert conflict.status == 409  # not empty
    run_op(quiet, ctx.rest("swift", "DELETE", "/v1/{account}/{container}/{object}",
                           {"container": "c1", "object": "o1"}))
    deleted = run_op(quiet, ctx.rest("swift", "DELETE", "/v1/{account}/{container}",
                                     {"container": "c1"}))
    assert deleted.ok


def test_swift_507_when_disk_full(quiet):
    quiet.faults.fill_disk("glance-node", leave_free_gb=1.0)
    ctx = quiet.client_context()
    response = run_op(quiet, ctx.rest("swift", "PUT",
                                      "/v1/{account}/{container}/{object}",
                                      {"container": "c", "object": "o",
                                       "size_gb": 0.5}))
    assert response.status == 507


# ---------------------------------------------------------------------------
# Keystone (NTP interplay)
# ---------------------------------------------------------------------------

def test_ntp_down_on_service_node_yields_401(quiet):
    quiet.faults.crash_process("cinder-node", "ntp")
    events = []
    quiet.taps.attach_global(events.append)
    ctx = quiet.client_context()
    response = run_op(quiet, ctx.rest("cinder", "GET", "/v2/{tenant}/volumes"))
    assert response.status == 503
    assert "Keystone" in response.body
    unauthorized = [e for e in events if e.status == 401]
    assert unauthorized
    assert unauthorized[0].src_service == "cinder"
    assert unauthorized[0].dst_service == "keystone"


def test_ntp_healthy_allows_listing(quiet):
    ctx = quiet.client_context()
    response = run_op(quiet, ctx.rest("cinder", "GET", "/v2/{tenant}/volumes"))
    assert response.ok
