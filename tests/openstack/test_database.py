"""Tests for the simulated MySQL store."""

import pytest

from repro.sim import Simulator
from repro.openstack.database import Database
from repro.openstack.errors import DependencyUnavailable
from repro.openstack.software import ProcessTable


def make_db():
    sim = Simulator()
    processes = ProcessTable()
    processes.install("ctrl", "mysql")
    return sim, processes, Database(sim, processes, "ctrl")


def drive(sim, generator):
    """Run a DB query generator to completion, returning its value."""
    result = []

    def proc():
        value = yield from generator
        result.append(value)

    sim.spawn(proc())
    sim.run()
    return result[0]


def test_insert_and_get():
    sim, _, db = make_db()
    drive(sim, db.insert("servers", {"id": "s1", "status": "BUILD"}))
    record = drive(sim, db.get("servers", "s1"))
    assert record["status"] == "BUILD"


def test_get_missing_returns_none():
    sim, _, db = make_db()
    assert drive(sim, db.get("servers", "nope")) is None


def test_insert_requires_id():
    sim, _, db = make_db()
    with pytest.raises(ValueError):
        drive(sim, db.insert("servers", {"status": "BUILD"}))


def test_update_merges_fields():
    sim, _, db = make_db()
    drive(sim, db.insert("servers", {"id": "s1", "status": "BUILD"}))
    updated = drive(sim, db.update("servers", "s1", status="ACTIVE", node="c1"))
    assert updated["status"] == "ACTIVE"
    assert updated["node"] == "c1"


def test_update_missing_returns_none():
    sim, _, db = make_db()
    assert drive(sim, db.update("servers", "nope", status="X")) is None


def test_delete():
    sim, _, db = make_db()
    drive(sim, db.insert("t", {"id": "a"}))
    assert drive(sim, db.delete("t", "a")) is True
    assert drive(sim, db.delete("t", "a")) is False


def test_select_with_predicate():
    sim, _, db = make_db()
    for index in range(5):
        drive(sim, db.insert("t", {"id": f"r{index}", "even": index % 2 == 0}))
    rows = drive(sim, db.select("t", lambda r: r["even"]))
    assert len(rows) == 3


def test_queries_cost_simulated_time():
    sim, _, db = make_db()
    drive(sim, db.insert("t", {"id": "a"}))
    assert sim.now == pytest.approx(Database.QUERY_LATENCY)


def test_mysql_down_raises_dependency_error():
    sim, processes, db = make_db()
    processes.kill("ctrl", "mysql", now=0.0)
    assert not db.available
    with pytest.raises(DependencyUnavailable):
        drive(sim, db.get("t", "x"))


def test_returned_records_are_copies():
    sim, _, db = make_db()
    drive(sim, db.insert("t", {"id": "a", "tags": "x"}))
    record = drive(sim, db.get("t", "a"))
    record["tags"] = "mutated"
    assert drive(sim, db.get("t", "a"))["tags"] == "x"


def test_peek_and_count_are_synchronous():
    sim, _, db = make_db()
    drive(sim, db.insert("t", {"id": "a"}))
    assert db.peek("t", "a") == {"id": "a"}
    assert db.peek("t", "b") is None
    assert db.count("t") == 1
    assert db.count("empty") == 0


def test_new_id_unique_and_prefixed():
    _, _, db = make_db()
    ids = {db.new_id("srv") for _ in range(100)}
    assert len(ids) == 100
    assert all(i.startswith("srv-") for i in ids)
