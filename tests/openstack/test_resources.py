"""Tests for the per-node resource model."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.openstack.resources import NodeResources
from repro.openstack.topology import NodeSpec


def make_resources():
    spec = NodeSpec("test-node", "10.0.0.1")
    return NodeResources(spec, random.Random(0))


def test_baseline_cpu_low():
    resources = make_resources()
    assert resources.cpu_util(0.0) < 0.1


def test_inflight_raises_cpu():
    resources = make_resources()
    idle = resources.cpu_util(0.0)
    for _ in range(20):
        resources.enter()
    assert resources.cpu_util(0.0) > idle
    for _ in range(20):
        resources.leave()
    assert resources.cpu_util(0.0) == pytest.approx(idle)


def test_leave_underflow_raises():
    with pytest.raises(RuntimeError):
        make_resources().leave()


def test_cpu_clamped_to_one():
    resources = make_resources()
    resources.inject("cpu", 5.0, start=0.0)
    assert resources.cpu_util(1.0) == 1.0


def test_surge_window_respected():
    resources = make_resources()
    resources.inject("cpu", 0.5, start=10.0, end=20.0)
    assert resources.cpu_util(5.0) < 0.2
    assert resources.cpu_util(15.0) > 0.5
    assert resources.cpu_util(25.0) < 0.2


def test_open_ended_surge():
    resources = make_resources()
    resources.inject("cpu", 0.4, start=10.0, end=None)
    assert resources.cpu_util(1e9) > 0.4


def test_invalid_metric_rejected():
    with pytest.raises(ValueError):
        make_resources().inject("gpu", 1.0, start=0.0)


def test_disk_consumption_and_release():
    resources = make_resources()
    free_before = resources.disk_free_gb(0.0)
    resources.consume_disk(100.0)
    assert resources.disk_free_gb(0.0) == pytest.approx(free_before - 100.0)
    resources.release_disk(50.0)
    assert resources.disk_free_gb(0.0) == pytest.approx(free_before - 50.0)


def test_disk_never_negative():
    resources = make_resources()
    resources.consume_disk(10_000.0)
    assert resources.disk_free_gb(0.0) == 0.0
    resources.release_disk(1e9)
    assert resources.disk_used_gb == 0.0


def test_slowdown_monotone_in_load():
    resources = make_resources()
    idle = resources.slowdown(0.0)
    resources.inject("cpu", 0.6, start=0.0)
    assert resources.slowdown(1.0) > idle
    assert idle >= 1.0


def test_sample_fields_consistent():
    resources = make_resources()
    sample = resources.sample(3.0)
    assert sample.node == "test-node"
    assert sample.ts == 3.0
    assert 0.0 <= sample.cpu_util <= 1.0
    assert 0.0 <= sample.mem_util <= 1.0
    assert 0.0 <= sample.disk_free_fraction <= 1.0


def test_memory_pressure_visible_in_sample():
    resources = make_resources()
    before = resources.sample(0.0).mem_used_mb
    resources.inject("mem_mb", 50_000.0, start=0.0)
    assert resources.sample(1.0).mem_used_mb > before


@given(st.integers(min_value=0, max_value=200))
def test_cpu_always_in_unit_interval(inflight):
    resources = make_resources()
    for _ in range(inflight):
        resources.enter()
    assert 0.0 <= resources.cpu_util(0.0) <= 1.0
