"""Tests for the software-dependency process table."""

import pytest

from repro.openstack.software import ProcessTable


def test_install_and_liveness():
    table = ProcessTable()
    table.install("node-a", "ntp")
    assert table.is_alive("node-a", "ntp")
    assert table.has("node-a", "ntp")
    assert not table.has("node-a", "mysql")
    assert not table.is_alive("node-b", "ntp")


def test_duplicate_install_rejected():
    table = ProcessTable()
    table.install("node-a", "ntp")
    with pytest.raises(ValueError):
        table.install("node-a", "ntp")


def test_kill_and_restart_cycle():
    table = ProcessTable()
    table.install("node-a", "mysql")
    table.kill("node-a", "mysql", now=5.0)
    assert not table.is_alive("node-a", "mysql")
    process = table.get("node-a", "mysql")
    assert process.since == 5.0
    table.restart("node-a", "mysql", now=9.0)
    assert table.is_alive("node-a", "mysql")
    assert process.since == 9.0


def test_kill_is_idempotent():
    table = ProcessTable()
    table.install("n", "p")
    table.kill("n", "p", now=1.0)
    table.kill("n", "p", now=2.0)
    assert table.get("n", "p").since == 1.0  # first transition wins


def test_kill_unknown_raises():
    with pytest.raises(KeyError):
        ProcessTable().kill("n", "p", now=0.0)


def test_on_node_filters():
    table = ProcessTable()
    table.install("a", "x")
    table.install("a", "y")
    table.install("b", "x")
    assert {p.name for p in table.on_node("a")} == {"x", "y"}
    assert len(table.on_node("c")) == 0


def test_dead_listing():
    table = ProcessTable()
    table.install("a", "x")
    table.install("b", "y")
    assert table.dead() == []
    table.kill("b", "y", now=1.0)
    assert [p.key for p in table.dead()] == [("b", "y")]


def test_len_and_iteration():
    table = ProcessTable()
    for index in range(5):
        table.install("node", f"proc-{index}")
    assert len(table) == 5
    assert len(list(table)) == 5
