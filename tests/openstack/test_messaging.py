"""Tests for the REST/RPC transport engine."""

import pytest

from repro.openstack.cloud import Cloud
from repro.openstack.config import CloudConfig
from repro.openstack.apis import ApiKind


def run_op(cloud, generator):
    """Drive one operation to completion; returns its value."""
    result = []

    def proc():
        value = yield from generator
        result.append(value)

    process = cloud.sim.spawn(proc())
    cloud.run_until([process])
    return result[0]


@pytest.fixture()
def quiet():
    return Cloud(seed=2, config=CloudConfig(heartbeats_enabled=False))


def capture(cloud):
    events = []
    cloud.taps.attach_global(events.append)
    return events


def test_rest_round_trip(quiet):
    events = capture(quiet)
    ctx = quiet.client_context()
    response = run_op(quiet, ctx.rest("glance", "GET", "/v2/images"))
    assert response.ok
    target = [e for e in events if e.name == "/v2/images"]
    assert len(target) == 1
    event = target[0]
    assert event.kind is ApiKind.REST
    assert event.latency > 0
    assert event.src_node == "ctrl"
    assert event.dst_node == "glance-node"


def test_first_call_triggers_auth_leg(quiet):
    events = capture(quiet)
    ctx = quiet.client_context()
    run_op(quiet, ctx.rest("glance", "GET", "/v2/images"))
    auth = [e for e in events if e.dst_service == "keystone"]
    assert len(auth) >= 1
    assert all(e.noise for e in auth if e.name == "/v3/auth/tokens")


def test_token_cached_within_ttl(quiet):
    events = capture(quiet)
    ctx = quiet.client_context()
    run_op(quiet, ctx.rest("glance", "GET", "/v2/images"))
    run_op(quiet, ctx.rest("glance", "GET", "/v2/images"))
    # POST /v3/auth/tokens (token issue) happens once thanks to caching.
    issues = [e for e in events
              if e.name == "/v3/auth/tokens" and e.method == "POST"]
    assert len(issues) == 1


def test_error_returned_not_raised(quiet):
    ctx = quiet.client_context()
    response = run_op(quiet, ctx.rest("glance", "GET", "/v2/images/{id}",
                                      {"id": "missing"}))
    assert response.status == 404
    assert response.error


def test_forced_error_injection(quiet):
    key = "rest:glance:GET:/v2/images"
    quiet.faults.inject_api_error(key, 503, "maintenance", count=1)
    ctx = quiet.client_context()
    first = run_op(quiet, ctx.rest("glance", "GET", "/v2/images"))
    second = run_op(quiet, ctx.rest("glance", "GET", "/v2/images"))
    assert first.status == 503
    assert second.ok


def test_forced_error_scoped_by_op_id(quiet):
    key = "rest:glance:GET:/v2/images"
    quiet.faults.inject_api_error(key, 500, "targeted", count=1, op_id="op-X")
    other = quiet.client_context(op_id="op-Y")
    target = quiet.client_context(op_id="op-X")
    assert run_op(quiet, other.rest("glance", "GET", "/v2/images")).ok
    assert run_op(quiet, target.rest("glance", "GET", "/v2/images")).status == 500


def test_rpc_call_round_trip(quiet):
    events = capture(quiet)
    ctx = quiet.client_context()
    response = run_op(quiet, ctx.rpc("neutron", "sync_routers"))
    assert response.ok
    rpc_events = [e for e in events if e.kind is ApiKind.RPC]
    assert len(rpc_events) == 1
    assert rpc_events[0].msg_id.startswith("msg-")


def test_rpc_cast_is_asynchronous(quiet):
    ctx = quiet.client_context()
    response = run_op(quiet, ctx.rpc("neutron", "port_update", {"port_id": "p"}))
    assert response.ok  # publish acknowledged before handler work


def test_rpc_broker_down_times_out(quiet):
    quiet.faults.crash_process("ctrl", "rabbitmq")
    ctx = quiet.client_context()
    start = quiet.sim.now
    response = run_op(quiet, ctx.rpc("neutron", "sync_routers"))
    assert response.status == 504
    assert "MessagingTimeout" in response.body
    assert quiet.sim.now - start >= quiet.broker.TIMEOUT


def test_injected_latency_inflates_observed_latency(quiet):
    events = capture(quiet)
    ctx = quiet.client_context()
    run_op(quiet, ctx.rest("glance", "GET", "/v2/images"))
    baseline = [e for e in events if e.name == "/v2/images"][-1].latency
    quiet.faults.inject_latency("glance-node", 0.050)
    run_op(quiet, ctx.rest("glance", "GET", "/v2/images"))
    slowed = [e for e in events if e.name == "/v2/images"][-1].latency
    assert slowed > baseline + 0.08  # 50 ms each way


def test_service_slowdown_multiplier(quiet):
    events = capture(quiet)
    ctx = quiet.client_context()
    run_op(quiet, ctx.rest("glance", "GET", "/v2/images"))
    baseline = [e for e in events if e.name == "/v2/images"][-1].latency
    quiet.faults.slow_service("glance", 20.0)
    run_op(quiet, ctx.rest("glance", "GET", "/v2/images"))
    slowed = [e for e in events if e.name == "/v2/images"][-1].latency
    assert slowed > baseline * 3
    quiet.faults.reset_service_speed("glance")


def test_ground_truth_labels_propagate(quiet):
    events = capture(quiet)
    ctx = quiet.client_context(op_id="op-42", test_id="test-42")
    run_op(quiet, ctx.rest("nova", "POST", "/v2.1/servers", {"name": "x"}))
    quiet.settle(3.0)
    labelled = [e for e in events if e.op_id == "op-42"]
    # The whole nested cascade carries the initiating operation's id.
    assert len(labelled) >= 3
    assert {e.test_id for e in labelled} == {"test-42"}


def test_event_sequence_numbers_increase(quiet):
    events = capture(quiet)
    ctx = quiet.client_context()
    run_op(quiet, ctx.rest("glance", "GET", "/v2/images"))
    run_op(quiet, ctx.rest("glance", "GET", "/v2/images"))
    seqs = [e.seq for e in events]
    assert seqs == sorted(seqs)
    assert len(set(seqs)) == len(seqs)
