"""Tests for API identities."""

import pytest

from repro.openstack.apis import Api, ApiKind


def test_rest_state_change_methods():
    for method in ("POST", "PUT", "DELETE", "PATCH"):
        api = Api(ApiKind.REST, "nova", method, "/v2.1/servers")
        assert api.state_change
        assert not api.idempotent_read


def test_rest_read_methods():
    for method in ("GET", "HEAD"):
        api = Api(ApiKind.REST, "nova", method, "/v2.1/servers")
        assert not api.state_change
        assert api.idempotent_read


def test_rpc_is_always_state_change():
    for method in ("call", "cast"):
        api = Api(ApiKind.RPC, "nova", method, "build_and_run_instance")
        assert api.state_change
        assert not api.idempotent_read


def test_invalid_rest_method_rejected():
    with pytest.raises(ValueError):
        Api(ApiKind.REST, "nova", "FETCH", "/v2.1/servers")


def test_invalid_rpc_method_rejected():
    with pytest.raises(ValueError):
        Api(ApiKind.RPC, "nova", "GET", "thing")


def test_key_is_unique_per_identity():
    a = Api(ApiKind.REST, "nova", "GET", "/v2.1/servers")
    b = Api(ApiKind.REST, "nova", "POST", "/v2.1/servers")
    c = Api(ApiKind.REST, "neutron", "GET", "/v2.1/servers")
    assert len({a.key, b.key, c.key}) == 3


def test_noise_flag_does_not_affect_identity():
    a = Api(ApiKind.RPC, "nova", "cast", "report_state", noise=True)
    b = Api(ApiKind.RPC, "nova", "cast", "report_state", noise=False)
    assert a == b
    assert a.key == b.key


def test_str_rendering():
    rest = Api(ApiKind.REST, "nova", "GET", "/v2.1/servers")
    rpc = Api(ApiKind.RPC, "neutron", "call", "sync_routers")
    assert "GET" in str(rest) and "nova" in str(rest)
    assert "rpc" in str(rpc) and "sync_routers" in str(rpc)
