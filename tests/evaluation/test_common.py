"""Unit tests for the evaluation-harness helpers."""

import pytest

from repro.core.config import GretelConfig
from repro.evaluation.common import (
    FaultRunStats,
    default_suite,
    make_monitored_analyzer,
    p_rate_for,
)


def test_p_rate_floor_and_scaling():
    assert p_rate_for(1) == 150.0
    assert p_rate_for(100) == 1300.0
    assert p_rate_for(400) == 5200.0


def test_default_suite_memoized():
    assert default_suite(0) is default_suite(0)
    assert default_suite(0) is not default_suite(1)


def test_make_monitored_analyzer_wiring(small_character):
    cloud, plane, analyzer = make_monitored_analyzer(
        small_character, seed=1, concurrency=100,
    )
    assert analyzer.store is plane.store
    assert analyzer.alpha == GretelConfig(
        p_rate=p_rate_for(100)
    ).sliding_window_size(small_character.library.fp_max)
    # Events reach the analyzer.
    ctx = cloud.client_context()

    def op():
        yield from ctx.rest("nova", "GET", "/v2.1/limits")

    process = cloud.sim.spawn(op())
    cloud.run_until([process])
    cloud.settle(0.1)
    assert analyzer.events_processed >= 2


def test_fault_run_stats_aggregations():
    stats = FaultRunStats(reports=[], outcomes=[], injected=0, library_size=10)
    assert stats.mean_theta() == 1.0
    assert stats.mean_matched() == 0.0
    assert stats.mean_candidates() == 0.0
    assert stats.max_report_delay() == 0.0
    assert stats.true_hits() == []


def test_distinctive_fault_api_prefers_rare_late_apis(full_character):
    import random

    from repro.evaluation.common import _distinctive_fault_api
    from repro.openstack.catalog import default_catalog

    suite = default_suite()
    test = next(t for t in suite.tests
                if t.name.startswith("compute.boot_server"))
    symbols = full_character.library.symbols
    catalog = default_catalog()
    rng = random.Random(0)
    picks = {
        _distinctive_fault_api(test, full_character, symbols, rng)
        for _ in range(30)
    }
    assert picks
    fingerprint = full_character.library.get(test.test_id)
    for key in picks:
        api = catalog.get(key)
        # Only state-change REST APIs from the operation itself.
        assert api.state_change
        assert api.kind.value == "rest"
        assert symbols.symbol(key) in fingerprint.symbols
    # Reads (the ubiquitous status polls) are never the injection site.
    assert all(not catalog.get(k).idempotent_read for k in picks)
