"""Unit tests for figure-module internals (fast, synthetic inputs)."""

import pytest

from repro.evaluation import fig5, fig8c, table1
from repro.evaluation.fig8a import Fig8aPoint
from repro.evaluation.fig8a import format_report as fig8a_format
from repro.evaluation.fig8c import ThroughputPoint


def test_table1_format_includes_paper_reference():
    rows = [{
        "category": "compute", "tests": 10, "unique_rpc": 3,
        "unique_rest": 7, "rpc_events": 100, "rest_events": 200,
        "avg_fp_with_rpc": 12.0, "avg_fp_without_rpc": 9.0,
    }]
    text = table1.format_report(rows)
    assert "10|517" in text  # measured | paper


def test_fig5_overlap_helper():
    assert fig5._overlap(frozenset("abc"), frozenset("ab")) == pytest.approx(2 / 3)
    assert fig5._overlap(frozenset(), frozenset("ab")) == 0.0


def test_fig5_low_overlap_fraction():
    series = {"all": [0.05, 0.10, 0.20, 0.30]}
    assert fig5.low_overlap_fraction(series, threshold=0.15) == 0.5
    assert fig5.low_overlap_fraction({"all": []}) == 0.0


def test_fig8a_format():
    text = fig8a_format([
        Fig8aPoint(concurrency=100, matched_mean=6.0, theta=0.99, reports=16),
        Fig8aPoint(concurrency=400, matched_mean=3.0, theta=0.995, reports=16),
    ])
    assert "100" in text and "400" in text


def test_fig8c_format_shape_line():
    def point(fault_every, eff):
        return ThroughputPoint(
            fault_every=fault_every, events=1000,
            gretel_ingest_eps=50_000, gretel_ingest_mbps=80.0,
            gretel_effective_eps=eff, gretel_effective_mbps=eff / 600,
            hansel_eps=1500, hansel_mbps=2.5, snapshots=10,
        )

    text = fig8c.format_report([point(100, 5_000), point(2000, 45_000)])
    assert "9.0x" in text  # 45k / 5k
    assert "HANSEL" in text


def test_fig6_format_with_synthetic_series():
    from repro.evaluation.fig6 import Fig6Result, format_report

    series = [(float(t), 0.01 if t < 50 else 0.03) for t in range(100)]
    result = Fig6Result(
        series=series,
        alarms=[(52.0, 0.03, 0.01)],
        surge_window=(40.0, 80.0),
        reports=[],
        cpu_root_cause_found=True,
        operations_completed=500,
    )
    text = format_report(result)
    assert "CPU surge window" in text
    assert "level-shift alarms: 1 (1 inside the surge window)" in text
    assert "True" in text


def test_fig6_format_empty_series():
    from repro.evaluation.fig6 import Fig6Result, format_report

    result = Fig6Result(series=[], alarms=[], surge_window=(0, 1))
    assert "no samples" in format_report(result)


def test_fig8b_format_with_synthetic_series():
    from repro.evaluation.fig8b import Fig8bResult, format_report

    series = [(float(t), 0.005 if not 20 <= t < 60 else 0.055)
              for t in range(80)]
    result = Fig8bResult(
        series=series,
        alarms=[(21.0, 0.055, 0.005), (70.0, 0.05, 0.004)],
        injection_window=(20.0, 60.0),
        injected_delay=0.050,
        reports=[],
        operations_completed=100,
    )
    assert result.alarms_in_window == 1
    assert result.alarms_outside_window == 1
    text = format_report(result)
    assert "injected delay: 50 ms" in text
    assert "LS alarms: 2 total" in text


def test_fig7_format_helpers():
    from repro.evaluation.fig7 import PrecisionCell, format_fig7a, format_fig7b

    cells = [PrecisionCell(
        concurrency=100, faults=8, theta=0.985, matched_mean=18.0,
        candidates_mean=250.0, true_hit_rate=0.5, reports=16,
        max_report_delay=1.2,
    )]
    a = format_fig7a(cells)
    assert "0.9850" in a
    b = format_fig7b(cells)
    assert "250.0" in b and "18.0" in b


def test_hansel_comparison_format():
    from repro.evaluation.hansel_comparison import ComparisonResult, format_report

    result = ComparisonResult(
        faults_injected=4, gretel_reports=5, gretel_named_operation=5,
        gretel_root_causes=1, gretel_mean_ops_matched=12.0,
        gretel_max_report_delay=1.4, hansel_reports=5,
        hansel_mean_chain_length=300.0, hansel_min_reporting_latency=30.0,
        events_on_wire=4000,
    )
    text = format_report(result)
    assert "GRETEL" in text and "HANSEL" in text
    assert "never" in text
    assert "300.0 msgs" in text


def test_overhead_format():
    from repro.evaluation.overhead import OverheadResult, format_report

    result = OverheadResult(
        events_processed=4000, total_wall_seconds=2.0,
        analyzer_wall_seconds=0.2, simulated_seconds=4.0,
        peak_memory_mb=3.5, reports=2,
    )
    assert result.cpu_share == 0.05
    assert result.per_event_cost == 0.2 / 4000
    assert result.projected_share(360.0) == (0.2 / 4000) * 4000 / 360.0
    text = format_report(result)
    assert "4000" in text
