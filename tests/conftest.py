"""Shared fixtures: clouds, suites and cached characterizations."""

import pytest

from repro.openstack.cloud import Cloud
from repro.core.characterize import characterize_suite
from repro.workloads.tempest import TempestSuite, build_suite


@pytest.fixture(scope="session")
def suite():
    """The full 1200-test generated suite."""
    return build_suite()


@pytest.fixture(scope="session")
def small_suite(suite):
    """One test per template (~51 tests), all categories covered."""
    seen = set()
    tests = []
    for test in suite.tests:
        if test.template.name not in seen:
            seen.add(test.template.name)
            tests.append(test)
    return TempestSuite(tests=tests)


@pytest.fixture(scope="session")
def small_character(small_suite):
    """Characterization of the small suite (fast, uncached)."""
    return characterize_suite(small_suite, iterations=2)


@pytest.fixture(scope="session")
def full_character():
    """Characterization of the full suite (disk-cached)."""
    from repro.evaluation.common import default_characterization

    return default_characterization()


@pytest.fixture()
def cloud():
    """A fresh deployment per test."""
    return Cloud(seed=1)


@pytest.fixture()
def quiet_cloud():
    """A deployment without background heartbeats (deterministic traces)."""
    from repro.openstack.config import CloudConfig

    return Cloud(seed=1, config=CloudConfig(heartbeats_enabled=False))
