"""Tests for the ASCII chart renderers."""

from hypothesis import given, strategies as st

from repro.reporting import render_bars, render_cdf, render_series


def test_series_empty():
    assert "(no data)" in render_series([], label="x")


def test_series_renders_shape():
    points = [(float(x), 0.0 if x < 50 else 1.0) for x in range(100)]
    text = render_series(points, width=20, label="step")
    lines = text.splitlines()
    chart = lines[1].strip("|")
    # Low at the start, high at the end.
    assert chart[0] == " " or chart[0] in "▁▂"
    assert chart[-1] == "█"


def test_series_markers():
    points = [(float(x), 1.0) for x in range(100)]
    text = render_series(points, width=10, markers=[0.0, 99.0])
    marker_line = text.splitlines()[2].strip("|")
    assert marker_line[0] == "^"
    assert marker_line[-1] == "^"


def test_series_constant_values():
    points = [(float(x), 5.0) for x in range(10)]
    text = render_series(points, label="flat")
    assert "[5 .. 5]" in text


def test_cdf_rows_per_series():
    text = render_cdf({"a": [0.1, 0.2], "b": [0.9]})
    assert text.count("|") == 4  # two data rows, two pipes each
    assert "a" in text and "b" in text


def test_cdf_skips_empty_series():
    text = render_cdf({"a": [], "b": [0.5]})
    assert " a " not in text


def test_cdf_full_fraction_at_range_end():
    text = render_cdf({"x": [0.0]}, width=10)
    row = text.splitlines()[0]
    assert row.strip().endswith("█|")


def test_bars_scaling_and_labels():
    text = render_bars([("alpha", 10.0), ("b", 5.0)], width=10, unit="ms")
    lines = text.splitlines()
    assert lines[0].count("█") == 10
    assert lines[1].count("█") == 5
    assert "10ms" in lines[0]


def test_bars_empty():
    assert render_bars([]) == "(no data)"


def test_bars_zero_values():
    text = render_bars([("zero", 0.0), ("one", 1.0)])
    assert "zero" in text


@given(st.lists(st.tuples(st.floats(0, 100, allow_nan=False),
                          st.floats(0, 10, allow_nan=False)),
                min_size=1, max_size=200))
def test_series_never_crashes(points):
    text = render_series(points, width=30)
    assert "|" in text


@given(st.dictionaries(st.sampled_from(["a", "b", "c"]),
                       st.lists(st.floats(0, 1, allow_nan=False), max_size=50),
                       max_size=3))
def test_cdf_never_crashes(series):
    render_cdf(series)
