"""Tests for the analyzer-side metadata store."""

from repro.openstack.resources import ResourceSample
from repro.monitoring.store import MetadataStore, WatcherReport


def sample(node, ts, cpu=0.1):
    return ResourceSample(
        node=node, ts=ts, cpu_util=cpu, mem_used_mb=1000.0,
        mem_total_mb=131_072.0, disk_free_gb=500.0, disk_total_gb=900.0,
        net_mbps=1.0, disk_io_ops=2.0,
    )


def test_samples_between_inclusive():
    store = MetadataStore()
    for ts in range(10):
        store.add_sample(sample("a", float(ts)))
    window = store.samples_between("a", 3.0, 6.0)
    assert [s.ts for s in window] == [3.0, 4.0, 5.0, 6.0]


def test_samples_between_unknown_node():
    assert MetadataStore().samples_between("x", 0.0, 10.0) == []


def test_latest_sample_with_and_without_bound():
    store = MetadataStore()
    for ts in range(5):
        store.add_sample(sample("a", float(ts)))
    assert store.latest_sample("a").ts == 4.0
    assert store.latest_sample("a", before=2.5).ts == 2.0
    assert store.latest_sample("a", before=-1.0) is None
    assert store.latest_sample("missing") is None


def test_baseline_samples_horizon():
    store = MetadataStore()
    for ts in range(100):
        store.add_sample(sample("a", float(ts)))
    baseline = store.baseline_samples("a", before=90.0, horizon=10.0)
    assert baseline[0].ts == 80.0
    assert baseline[-1].ts == 90.0


def test_watcher_state_timeline():
    store = MetadataStore()
    store.add_watcher_report(WatcherReport("a", 1.0, "ntp", True))
    store.add_watcher_report(WatcherReport("a", 5.0, "ntp", False))
    store.add_watcher_report(WatcherReport("a", 9.0, "ntp", True))
    assert store.process_state("a", "ntp", at=3.0).alive is True
    assert store.process_state("a", "ntp", at=6.0).alive is False
    assert store.process_state("a", "ntp").alive is True
    assert store.process_state("a", "missing") is None


def test_dead_processes_at_time():
    store = MetadataStore()
    store.add_watcher_report(WatcherReport("a", 1.0, "ntp", True))
    store.add_watcher_report(WatcherReport("a", 1.0, "mysql", True))
    store.add_watcher_report(WatcherReport("a", 5.0, "mysql", False))
    assert store.dead_processes("a", at=2.0) == []
    dead = store.dead_processes("a", at=6.0)
    assert [d.process for d in dead] == ["mysql"]


def test_sample_eviction_keeps_recent():
    store = MetadataStore(max_samples_per_node=100)
    for ts in range(250):
        store.add_sample(sample("a", float(ts)))
    assert store.latest_sample("a").ts == 249.0
    # Old samples were evicted but the index stays consistent.
    recent = store.samples_between("a", 240.0, 249.0)
    assert len(recent) == 10
