"""Tests for the monitoring plane: network/resource agents, watchers."""

import pytest

from repro.openstack.cloud import Cloud
from repro.openstack.config import CloudConfig
from repro.monitoring.network import NetworkAgent
from repro.monitoring.plane import MonitoringPlane
from repro.monitoring.resources import ResourceAgent
from repro.monitoring.watchers import DependencyWatcher


@pytest.fixture()
def quiet():
    return Cloud(seed=4, config=CloudConfig(heartbeats_enabled=False))


def run_op(cloud, generator):
    result = []

    def proc():
        value = yield from generator
        result.append(value)

    process = cloud.sim.spawn(proc())
    cloud.run_until([process])
    return result[0]


def test_network_agent_captures_node_traffic(quiet):
    agent = NetworkAgent(quiet, "ctrl")
    received = []
    agent.subscribe(received.append)
    ctx = quiet.client_context()
    run_op(quiet, ctx.rest("glance", "GET", "/v2/images"))
    quiet.settle(0.1)
    assert agent.captured >= 1
    assert received
    assert all(e.src_node == "ctrl" for e in received)


def test_network_agent_forward_delay_preserves_order(quiet):
    agent = NetworkAgent(quiet, "ctrl", forward_delay=0.001)
    received = []
    agent.subscribe(received.append)
    ctx = quiet.client_context()
    for _ in range(5):
        run_op(quiet, ctx.rest("glance", "GET", "/v2/images"))
    quiet.settle(0.1)
    seqs = [e.seq for e in received]
    assert seqs == sorted(seqs)


def test_resource_agent_polls_periodically(quiet):
    agent = ResourceAgent(quiet, "ctrl", interval=1.0)
    samples = []
    agent.subscribe(samples.append)
    agent.start()
    quiet.sim.run(until=10.0)
    agent.stop()
    assert 8 <= len(samples) <= 11
    assert all(s.node == "ctrl" for s in samples)
    timestamps = [s.ts for s in samples]
    assert timestamps == sorted(timestamps)


def test_resource_agent_start_is_idempotent(quiet):
    agent = ResourceAgent(quiet, "ctrl", interval=1.0)
    samples = []
    agent.subscribe(samples.append)
    agent.start()
    agent.start()
    quiet.sim.run(until=5.0)
    agent.stop()
    assert len(samples) <= 6  # one poller, not two


def test_watcher_reports_all_processes(quiet):
    watcher = DependencyWatcher(quiet, "compute-1")
    reports = watcher.poll_once()
    names = {r.process for r in reports}
    assert names == {"ntp", "nova-compute",
                     "neutron-plugin-linuxbridge-agent", "libvirtd"}
    assert all(r.alive for r in reports)


def test_watcher_sees_crash(quiet):
    watcher = DependencyWatcher(quiet, "compute-1")
    quiet.faults.crash_process("compute-1", "libvirtd")
    reports = {r.process: r.alive for r in watcher.poll_once()}
    assert reports["libvirtd"] is False
    assert reports["ntp"] is True


def test_plane_wires_everything(quiet):
    plane = MonitoringPlane(quiet)
    assert set(plane.network_agents) == set(quiet.topology.node_names())
    plane.start()
    quiet.sim.run(until=3.0)
    plane.stop()
    for node in quiet.topology.node_names():
        assert plane.store.latest_sample(node) is not None
        assert plane.store.processes_on(node)


def test_plane_event_subscription(quiet):
    plane = MonitoringPlane(quiet)
    received = []
    plane.subscribe_events(received.append)
    ctx = quiet.client_context()
    run_op(quiet, ctx.rest("nova", "GET", "/v2.1/limits"))
    quiet.settle(0.1)
    assert plane.events_captured >= 2  # auth leg + call
    assert len(received) == plane.events_captured


def test_plane_poll_all_once(quiet):
    plane = MonitoringPlane(quiet)
    plane.poll_all_once()
    for node in quiet.topology.node_names():
        assert plane.store.latest_sample(node) is not None
