"""Tests for named deterministic random streams."""

from hypothesis import given, strategies as st

from repro.sim import RandomStreams


def test_same_seed_same_sequence():
    a = RandomStreams(7).stream("latency")
    b = RandomStreams(7).stream("latency")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_names_are_independent():
    streams = RandomStreams(7)
    first = [streams.stream("a").random() for _ in range(5)]
    fresh = RandomStreams(7)
    # Interleave draws from another stream; "a" must be unaffected.
    interleaved = []
    for _ in range(5):
        fresh.stream("b").random()
        interleaved.append(fresh.stream("a").random())
    assert first == interleaved


def test_different_seeds_differ():
    a = RandomStreams(1).stream("x").random()
    b = RandomStreams(2).stream("x").random()
    assert a != b


def test_stream_is_cached():
    streams = RandomStreams(0)
    assert streams.stream("x") is streams.stream("x")


def test_fork_is_deterministic():
    a = RandomStreams(3).fork("run-1").stream("s").random()
    b = RandomStreams(3).fork("run-1").stream("s").random()
    c = RandomStreams(3).fork("run-2").stream("s").random()
    assert a == b
    assert a != c


@given(st.integers(min_value=0, max_value=2**31), st.text(max_size=20))
def test_any_seed_and_name_work(seed, name):
    value = RandomStreams(seed).stream(name).random()
    assert 0.0 <= value < 1.0
