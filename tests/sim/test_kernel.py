"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()
    results = []

    def proc():
        yield Timeout(5.0)
        results.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert results == [5.0]


def test_timeout_delivers_value():
    sim = Simulator()
    seen = []

    def proc():
        value = yield Timeout(1.0, value="hello")
        seen.append(value)

    sim.spawn(proc())
    sim.run()
    assert seen == ["hello"]


def test_negative_timeout_rejected():
    with pytest.raises(SimulationError):
        Timeout(-1.0)


def test_schedule_into_past_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.5, lambda: None)


def test_events_fire_in_timestamp_order():
    sim = Simulator()
    order = []
    for delay in (3.0, 1.0, 2.0):
        sim.schedule(delay, order.append, delay)
    sim.run()
    assert order == [1.0, 2.0, 3.0]


def test_same_timestamp_fifo_order():
    sim = Simulator()
    order = []
    for tag in range(10):
        sim.schedule(1.0, order.append, tag)
    sim.run()
    assert order == list(range(10))


def test_run_until_stops_clock():
    sim = Simulator()
    fired = []
    sim.schedule(10.0, fired.append, True)
    assert sim.run(until=5.0) == 5.0
    assert not fired
    sim.run()
    assert fired


def test_run_until_beyond_heap_advances_clock():
    sim = Simulator()
    sim.run(until=42.0)
    assert sim.now == 42.0


def test_nested_yield_from():
    sim = Simulator()
    log = []

    def inner():
        yield Timeout(1.0)
        return "inner-done"

    def outer():
        result = yield from inner()
        log.append((sim.now, result))

    sim.spawn(outer())
    sim.run()
    assert log == [(1.0, "inner-done")]


def test_process_return_value_via_wait():
    sim = Simulator()
    got = []

    def child():
        yield Timeout(2.0)
        return 99

    def parent():
        child_proc = sim.spawn(child())
        value = yield child_proc
        got.append(value)

    sim.spawn(parent())
    sim.run()
    assert got == [99]


def test_event_succeed_resumes_waiters():
    sim = Simulator()
    gate = sim.event()
    seen = []

    def waiter():
        value = yield gate
        seen.append(value)

    sim.spawn(waiter())
    sim.schedule(3.0, gate.succeed, "fired")
    sim.run()
    assert seen == ["fired"]


def test_event_fail_raises_in_waiter():
    sim = Simulator()
    gate = sim.event()
    caught = []

    def waiter():
        try:
            yield gate
        except ValueError as exc:
            caught.append(str(exc))

    sim.spawn(waiter())
    sim.schedule(1.0, gate.fail, ValueError("boom"))
    sim.run()
    assert caught == ["boom"]


def test_event_double_trigger_rejected():
    sim = Simulator()
    gate = sim.event()
    gate.succeed(1)
    with pytest.raises(SimulationError):
        gate.succeed(2)


def test_event_fail_requires_exception():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.event().fail("not an exception")


def test_already_fired_event_resumes_immediately():
    sim = Simulator()
    gate = sim.event()
    gate.succeed("early")
    seen = []

    def waiter():
        value = yield gate
        seen.append((sim.now, value))

    sim.spawn(waiter())
    sim.run()
    assert seen == [(0.0, "early")]


def test_all_of_collects_values():
    sim = Simulator()
    got = []

    def proc():
        values = yield AllOf([Timeout(1.0, "a"), Timeout(3.0, "b"), Timeout(2.0, "c")])
        got.append((sim.now, values))

    sim.spawn(proc())
    sim.run()
    assert got == [(3.0, ["a", "b", "c"])]


def test_all_of_empty():
    sim = Simulator()
    got = []

    def proc():
        values = yield AllOf([])
        got.append(values)

    sim.spawn(proc())
    sim.run()
    assert got == [[]]


def test_any_of_returns_first():
    sim = Simulator()
    got = []

    def proc():
        value = yield AnyOf([Timeout(5.0, "slow"), Timeout(1.0, "fast")])
        got.append((sim.now, value))

    sim.spawn(proc())
    sim.run()
    assert got == [(1.0, "fast")]


def test_interrupt_raises_in_process():
    sim = Simulator()
    caught = []

    def victim():
        try:
            yield Timeout(100.0)
        except Interrupt as interrupt:
            caught.append((sim.now, interrupt.cause))

    process = sim.spawn(victim())
    sim.schedule(2.0, process.interrupt, "reason")
    sim.run()
    assert caught == [(2.0, "reason")]


def test_kill_terminates_silently():
    sim = Simulator()
    ran = []

    def victim():
        yield Timeout(100.0)
        ran.append(True)

    process = sim.spawn(victim())
    sim.schedule(1.0, process.kill)
    sim.run()
    assert not ran
    assert not process.alive


def test_orphan_crash_surfaces():
    sim = Simulator()

    def crasher():
        yield Timeout(1.0)
        raise RuntimeError("unobserved crash")

    sim.spawn(crasher())
    with pytest.raises(RuntimeError, match="unobserved crash"):
        sim.run()


def test_watched_crash_propagates_to_waiter():
    sim = Simulator()
    caught = []

    def crasher():
        yield Timeout(1.0)
        raise RuntimeError("observed crash")

    def watcher():
        try:
            yield sim.spawn(crasher())
        except RuntimeError as exc:
            caught.append(str(exc))

    sim.spawn(watcher())
    sim.run()
    assert caught == ["observed crash"]


def test_spawn_requires_generator():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Process(sim, lambda: None)  # type: ignore[arg-type]


def test_yield_invalid_object_crashes_process():
    sim = Simulator()

    def proc():
        yield 42

    sim.spawn(proc())
    with pytest.raises(SimulationError):
        sim.run()


def test_step_returns_false_when_idle():
    sim = Simulator()
    assert sim.step() is False
    sim.schedule(1.0, lambda: None)
    assert sim.step() is True
    assert sim.pending == 0


def test_many_processes_complete():
    sim = Simulator()
    done = []

    def worker(index):
        yield Timeout(index * 0.1)
        done.append(index)

    for index in range(100):
        sim.spawn(worker(index))
    sim.run()
    assert sorted(done) == list(range(100))


def test_call_at_fires_at_absolute_time():
    sim = Simulator()
    fired = []
    sim.call_at(2.5, lambda: fired.append(sim.now))
    sim.call_at(1.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [1.0, 2.5]


def test_call_at_passes_arguments():
    sim = Simulator()
    seen = []
    sim.call_at(0.5, seen.append, "payload")
    sim.run()
    assert seen == ["payload"]


def test_call_at_into_past_rejected():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.now == 1.0
    with pytest.raises(SimulationError):
        sim.call_at(0.5, lambda: None)


def test_call_at_now_is_allowed():
    sim = Simulator()
    fired = []
    sim.call_at(0.0, fired.append, True)
    sim.run()
    assert fired == [True]


def test_call_at_same_time_fifo_with_schedule():
    sim = Simulator()
    order = []
    sim.schedule(1.0, order.append, "schedule")
    sim.call_at(1.0, order.append, "call_at")
    sim.run()
    assert order == ["schedule", "call_at"]
