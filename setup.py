"""Legacy setup shim: enables editable installs on environments whose
setuptools predates PEP 660 editable-wheel support."""

from setuptools import setup

setup()
