#!/usr/bin/env python3
"""Fill EXPERIMENTS.md placeholders from the rendered results files.

EXPERIMENTS.md embeds each experiment's rendered output verbatim; this
helper replaces ``{{NAME}}`` markers with ``results/<file>.txt`` so the
document can be refreshed after every full benchmark run:

    GRETEL_EVAL_SCALE=full pytest benchmarks/ -q
    python scripts/fill_experiments.py
"""

import os
import re
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULTS = os.path.join(ROOT, "results")
TARGET = os.path.join(ROOT, "EXPERIMENTS.md")

PLACEHOLDERS = {
    "TABLE1": "table1.txt",
    "FIG5": "fig5.txt",
    "FIG6": "fig6.txt",
    "FIG7A": "fig7a.txt",
    "FIG7B": "fig7b.txt",
    "FIG7C": "fig7c.txt",
    "FIG8A": "fig8a.txt",
    "FIG8B": "fig8b.txt",
    "FIG8C": "fig8c.txt",
    "OVERHEAD": "overhead.txt",
    "HANSEL": "hansel_comparison.txt",
    "ABLATION_TRUNCATION": "ablation_truncation.txt",
    "ABLATION_RELAXED": "ablation_relaxed_match.txt",
    "ABLATION_CONTEXT": "ablation_context_buffer.txt",
    "ABLATION_NOISE": "ablation_noise_filter.txt",
    "ABLATION_DETECTOR": "ablation_detector_choice.txt",
    "CORRELATION": "extension_correlation_ids.txt",
}


def main() -> int:
    with open(TARGET, encoding="utf-8") as handle:
        text = handle.read()
    missing = []
    for marker, filename in PLACEHOLDERS.items():
        token = "{{" + marker + "}}"
        if token not in text:
            continue
        path = os.path.join(RESULTS, filename)
        if not os.path.exists(path):
            missing.append(filename)
            continue
        with open(path, encoding="utf-8") as handle:
            content = handle.read().rstrip()
        text = text.replace(token, content)
    leftover = re.findall(r"\{\{[A-Z0-9_]+\}\}", text)
    with open(TARGET, "w", encoding="utf-8") as handle:
        handle.write(text)
    if missing:
        print(f"missing results files: {missing}", file=sys.stderr)
    if leftover:
        print(f"unresolved placeholders: {leftover}", file=sys.stderr)
    print("EXPERIMENTS.md updated")
    return 1 if (missing or leftover) else 0


if __name__ == "__main__":
    sys.exit(main())
